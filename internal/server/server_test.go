package server_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/backendtest"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/workload"
)

// tier is one server-under-test: an engine over a backend, the HTTP
// serving tier on top, and a client talking to it over a real socket.
type tier struct {
	eng *core.Engine
	srv *server.Server
	hs  *httptest.Server
	cl  *client.Client
}

type openFunc func(*relation.Database, *access.Schema) (store.Backend, error)

func openSingle(d *relation.Database, a *access.Schema) (store.Backend, error) {
	return store.Open(d, a)
}

func openShard4(d *relation.Database, a *access.Schema) (store.Backend, error) {
	return shard.Open(d, a, 4)
}

func newTier(t *testing.T, open openFunc, cfg server.Config, copts ...client.Option) *tier {
	t.Helper()
	wcfg := workload.DefaultConfig()
	wcfg.Persons = 120
	wcfg.Seed = 7
	data, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := open(data, workload.Access(wcfg))
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(b)
	cfg.Engine = eng
	srv := server.NewServer(cfg)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	copts = append([]client.Option{client.WithHTTPClient(hs.Client())}, copts...)
	return &tier{eng: eng, srv: srv, hs: hs, cl: client.New(hs.URL, copts...)}
}

// wireCase is one conformance query: source, controlling set, binding
// generator over the test workload.
type wireCase struct {
	name string
	src  string
	ctrl []string
	bind func(i int) query.Bindings
}

func wireCases() []wireCase {
	p := func(i int) query.Bindings {
		return query.Bindings{"p": relation.Int(int64(i % 120))}
	}
	return []wireCase{
		{"Q1", workload.Q1Src, []string{"p"}, p},
		{"Q2", workload.Q2Src, []string{"p"}, p},
		{"Q3", workload.Q3Src, []string{"p", "yy"}, func(i int) query.Bindings {
			years := workload.DefaultConfig().Years
			return query.Bindings{
				"p":  relation.Int(int64(i % 120)),
				"yy": relation.Int(int64(years[i%len(years)])),
			}
		}},
		{"Q4", backendtest.Q4Src, []string{"p"}, p},
		{"Q5", backendtest.Q5Src, []string{"p"}, p},
	}
}

// TestWireConformance is the acceptance gate for the wire protocol: on a
// single-node backend and on 4 shards, every experiment query served
// over HTTP returns bit-identical answers AND bit-identical TupleReads
// to an in-process Exec on the same engine, and every served execution
// respects the static bound it advertised at prepare time.
func TestWireConformance(t *testing.T) {
	backends := []struct {
		name string
		open openFunc
	}{{"single", openSingle}, {"shard4", openShard4}}
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			ctx := context.Background()
			ti := newTier(t, be.open, server.Config{})
			for _, qc := range wireCases() {
				remote, err := ti.cl.Prepare(ctx, qc.src, qc.ctrl...)
				if err != nil {
					t.Fatalf("%s: remote prepare: %v", qc.name, err)
				}
				local := mustPrepare(t, ti.eng, qc.src, qc.ctrl)
				if remote.BoundReads != local.Plan().Bound.Reads {
					t.Fatalf("%s: wire bound %d, in-process bound %d", qc.name, remote.BoundReads, local.Plan().Bound.Reads)
				}
				if remote.Explain == "" || !strings.Contains(remote.Explain, qc.name) {
					t.Fatalf("%s: EXPLAIN missing from prepare response: %q", qc.name, remote.Explain)
				}
				for i := 0; i < 12; i++ {
					fixed := qc.bind(i * 11)
					want, err := local.Exec(ctx, fixed)
					if err != nil {
						t.Fatalf("%s %v in-process: %v", qc.name, fixed, err)
					}
					tuples, stats, err := remote.Exec(ctx, fixed)
					if err != nil {
						t.Fatalf("%s %v over wire: %v", qc.name, fixed, err)
					}
					got := relation.NewTupleSet(len(tuples))
					got.AddAll(tuples)
					if !got.Equal(want.Tuples) {
						t.Fatalf("%s %v: %d answers over wire, %d in-process", qc.name, fixed, got.Len(), want.Tuples.Len())
					}
					if stats.Reads != want.Cost.TupleReads {
						t.Fatalf("%s %v: wire charged %d tuple reads, in-process %d", qc.name, fixed, stats.Reads, want.Cost.TupleReads)
					}
					if stats.Reads > remote.BoundReads {
						t.Fatalf("%s %v: %d reads exceed advertised bound %d", qc.name, fixed, stats.Reads, remote.BoundReads)
					}
				}
			}
			// Re-preparing an identical query returns the same handle.
			r1, err := ti.cl.Prepare(ctx, workload.Q1Src, "p")
			if err != nil {
				t.Fatal(err)
			}
			r2, err := ti.cl.Prepare(ctx, workload.Q1Src, "p")
			if err != nil {
				t.Fatal(err)
			}
			if r1.Handle != r2.Handle {
				t.Fatalf("re-prepare minted a new handle: %s vs %s", r1.Handle, r2.Handle)
			}
		})
	}
}

// TestWireLimitBudgetDeadline pins the execution controls over the wire:
// LIMIT early-terminates server-side (fewer reads than the full drain),
// max_reads surfaces ErrBudgetExceeded through the stream, and an
// expired deadline surfaces ErrCanceled.
func TestWireLimitBudgetDeadline(t *testing.T) {
	ctx := context.Background()
	ti := newTier(t, openSingle, server.Config{})
	remote, err := ti.cl.Prepare(ctx, workload.Q1Src, "p")
	if err != nil {
		t.Fatal(err)
	}
	// Find a multi-answer binding.
	var fixed query.Bindings
	var full *server.QueryStats
	for i := 0; i < 120 && full == nil; i++ {
		f := query.Bindings{"p": relation.Int(int64(i))}
		tuples, stats, err := remote.Exec(ctx, f)
		if err != nil {
			t.Fatal(err)
		}
		if len(tuples) >= 2 {
			fixed, full = f, stats
		}
	}
	if full == nil {
		t.Fatal("no multi-answer binding in the workload")
	}

	tuples, stats, err := remote.Exec(ctx, fixed, client.WithLimit(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 {
		t.Fatalf("LIMIT 1 delivered %d answers", len(tuples))
	}
	if stats.Reads >= full.Reads {
		t.Fatalf("limited execution charged %d reads, full drain %d — early termination saved nothing over the wire", stats.Reads, full.Reads)
	}

	if _, _, err := remote.Exec(ctx, fixed, client.WithMaxReads(full.Reads-1)); !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("max_reads %d: err = %v, want ErrBudgetExceeded", full.Reads-1, err)
	}
	// The admission charge drops to the requested budget: the enforced
	// bound in the stream head reflects min(M, max_reads).
	rows, err := remote.Query(ctx, fixed, client.WithMaxReads(full.Reads))
	if err != nil {
		t.Fatal(err)
	}
	if rows.Bound() != full.Reads {
		t.Fatalf("enforced bound %d, want min(M, max_reads) = %d", rows.Bound(), full.Reads)
	}
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()

	if _, _, err := remote.Exec(ctx, fixed, client.WithTimeout(1)); err == nil {
		// A 1ms deadline may still finish on a fast machine; only a
		// returned error must be the typed one.
		t.Log("1ms deadline finished in time; deadline typing not exercised")
	} else if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("deadline err = %v, want ErrCanceled", err)
	}
}

// TestWireTypedErrors pins the error taxonomy across the wire: each
// failure mode comes back as the same sentinel an in-process caller
// would have seen.
func TestWireTypedErrors(t *testing.T) {
	ctx := context.Background()
	ti := newTier(t, openSingle, server.Config{})

	// Not controllable: Q1 with an empty controlling set has no bounded plan.
	if _, err := ti.cl.Prepare(ctx, workload.Q1Src); !errors.Is(err, core.ErrNotControllable) {
		t.Fatalf("uncontrolled prepare: err = %v, want ErrNotControllable", err)
	}
	// Parse failure.
	if _, err := ti.cl.Prepare(ctx, "not a query", "p"); err == nil {
		t.Fatal("garbage query prepared successfully")
	}
	// Unknown handle.
	bogus := &server.QueryRequest{Handle: "h999"}
	_ = bogus
	prep, err := ti.cl.Prepare(ctx, workload.Q1Src, "p")
	if err != nil {
		t.Fatal(err)
	}
	stale := *prep
	stale.Handle = "h999"
	if _, _, err := stale.Exec(ctx, query.Bindings{"p": relation.Int(1)}); err == nil || !strings.Contains(err.Error(), "h999") {
		t.Fatalf("unknown handle: err = %v, want not-found mentioning the handle", err)
	}
	// Invalid update: deleting an absent tuple.
	u := relation.NewUpdate()
	u.Delete("person", relation.Tuple{relation.Int(9_999_999), relation.Str("ghost"), relation.Str("NYC")})
	if _, err := ti.cl.Commit(ctx, u); !errors.Is(err, core.ErrInvalidUpdate) {
		t.Fatalf("invalid commit: err = %v, want ErrInvalidUpdate", err)
	}
}

// TestAdmissionOverWire pins the success-tolerant gate: a tenant whose
// SLA the static bound exceeds is rejected at prepare time with the
// bound in the typed error; a windowed read budget rejects the
// overflowing query and refunds completed ones; an unlimited tenant on
// the same server is unaffected.
func TestAdmissionOverWire(t *testing.T) {
	ctx := context.Background()
	ti := newTier(t, openSingle, server.Config{
		Policies: map[string]server.TenantPolicy{
			"small":   {MaxBound: 1},
			"budget1": {ReadBudget: 1, Window: time.Hour},
		},
	})

	small := client.New(ti.hs.URL, client.WithHTTPClient(ti.hs.Client()), client.WithTenant("small"))
	_, err := small.Prepare(ctx, workload.Q1Src, "p")
	var adm *server.AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("small-tenant prepare: err = %v, want AdmissionError", err)
	}
	if adm.Reason != "bound" || adm.Bound <= adm.Limit || adm.Limit != 1 {
		t.Fatalf("admission error %+v: want bound rejection with M > 1", adm)
	}
	if !errors.Is(err, server.ErrAdmission) || !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("admission error does not wrap the sentinels: %v", err)
	}

	// The default tenant is unlimited: same query sails through.
	if _, err := ti.cl.Prepare(ctx, workload.Q1Src, "p"); err != nil {
		t.Fatalf("default tenant rejected: %v", err)
	}

	// A 1-read hourly budget admits nothing with a larger bound.
	b1 := client.New(ti.hs.URL, client.WithHTTPClient(ti.hs.Client()), client.WithTenant("budget1"))
	prep, err := b1.Prepare(ctx, workload.Q1Src, "p")
	if err != nil {
		t.Fatalf("budget tenant prepare (bound check only): %v", err)
	}
	_, _, err = prep.Exec(ctx, query.Bindings{"p": relation.Int(1)})
	if !errors.As(err, &adm) || adm.Reason != "budget" {
		t.Fatalf("budget tenant exec: err = %v, want budget AdmissionError", err)
	}
	// ... unless the client lowers its own entitlement to fit the window.
	if _, _, err := prep.Exec(ctx, query.Bindings{"p": relation.Int(1)}, client.WithMaxReads(1)); err != nil && !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("budget tenant exec with max_reads=1: %v", err)
	}

	st, err := ti.cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenants["small"].RejectedBound == 0 {
		t.Fatalf("statusz does not count the bound rejection: %+v", st.Tenants["small"])
	}
	if st.Tenants["budget1"].RejectedBudget == 0 {
		t.Fatalf("statusz does not count the budget rejection: %+v", st.Tenants["budget1"])
	}
}

// TestWatchOverWire drives a live query over SSE: snapshot, then deltas
// for commits, then a clean close; the engine-side subscription is freed
// on client close.
func TestWatchOverWire(t *testing.T) {
	ctx := context.Background()
	ti := newTier(t, openSingle, server.Config{})
	prep, err := ti.cl.Prepare(ctx, workload.Q1Src, "p")
	if err != nil {
		t.Fatal(err)
	}
	w, err := prep.Watch(ctx, query.Bindings{"p": relation.Int(1)}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Head) == 0 {
		t.Fatal("watch snapshot has no head")
	}
	base := relation.NewTupleSet(len(w.Rows))
	base.AddAll(w.Rows)

	// A commit adding a friend for p=1 must arrive as an Ins delta.
	u := relation.NewUpdate()
	u.Insert("person", relation.Tuple{relation.Int(800_001), relation.Str("wire-w"), relation.Str("NYC")})
	u.Insert("friend", relation.Tuple{relation.Int(1), relation.Int(800_001)})
	cres, err := ti.cl.Commit(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Seq == 0 || cres.Watchers != 1 {
		t.Fatalf("commit result %+v: want seq > 0 and 1 watcher notified", cres)
	}
	d, err := w.Next()
	if err != nil {
		t.Fatal(err)
	}
	if d.Seq != cres.Seq || len(d.Ins) != 1 {
		t.Fatalf("delta %+v: want Seq %d with 1 Ins", d, cres.Seq)
	}
	if d.Reads > d.Bound {
		t.Fatalf("delta charged %d reads over bound %d", d.Reads, d.Bound)
	}
	got := d.Ins[0].Tuple()
	if got[len(got)-1].AsString() != "wire-w" {
		t.Fatalf("delta Ins = %v, want the new friend's name", got)
	}

	w.Close()
	deadline := time.Now().Add(5 * time.Second)
	for ti.eng.Watchers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("engine still has %d watchers after client close", ti.eng.Watchers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMidStreamDisconnect closes a query stream before draining it: the
// server must settle admission (in-flight back to zero) and keep serving.
func TestMidStreamDisconnect(t *testing.T) {
	ctx := context.Background()
	ti := newTier(t, openSingle, server.Config{})
	prep, err := ti.cl.Prepare(ctx, workload.Q1Src, "p")
	if err != nil {
		t.Fatal(err)
	}
	var fixed query.Bindings
	for i := 0; i < 120; i++ {
		f := query.Bindings{"p": relation.Int(int64(i))}
		tuples, _, err := prep.Exec(ctx, f)
		if err != nil {
			t.Fatal(err)
		}
		if len(tuples) >= 2 {
			fixed = f
			break
		}
	}
	if fixed == nil {
		t.Fatal("no multi-answer binding")
	}
	rows, err := prep.Query(ctx, fixed)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	rows.Close() // disconnect mid-stream

	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := ti.cl.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Tenants["default"].Inflight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("in-flight not settled after disconnect: %+v", st.Tenants["default"])
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The tier still serves.
	if _, _, err := prep.Exec(ctx, fixed); err != nil {
		t.Fatalf("query after disconnect: %v", err)
	}
}

// TestDrain verifies graceful shutdown: watchers get a clean close, new
// requests get the typed draining refusal, and Drain returns once the
// tier is empty.
func TestDrain(t *testing.T) {
	ctx := context.Background()
	ti := newTier(t, openSingle, server.Config{})
	prep, err := ti.cl.Prepare(ctx, workload.Q1Src, "p")
	if err != nil {
		t.Fatal(err)
	}
	w, err := prep.Watch(ctx, query.Bindings{"p": relation.Int(1)}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	drainErr := make(chan error, 1)
	go func() { drainErr <- ti.srv.Drain(drainCtx) }()

	// The watcher sees the clean close event, not a dropped connection.
	if _, err := w.Next(); err != io.EOF {
		t.Fatalf("watch during drain: err = %v, want io.EOF (clean close)", err)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// New work is refused with the draining error; statusz still answers.
	if _, err := ti.cl.Prepare(ctx, workload.Q1Src, "p"); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("prepare on drained server: err = %v, want draining refusal", err)
	}
	st, err := ti.cl.Status(ctx)
	if err != nil {
		t.Fatalf("statusz on drained server: %v", err)
	}
	if !st.Draining {
		t.Fatal("statusz does not report draining")
	}
}

// TestStatusz spot-checks the unified snapshot: engine stats, handles,
// and tenant ledgers all present after some traffic.
func TestStatusz(t *testing.T) {
	ctx := context.Background()
	ti := newTier(t, openSingle, server.Config{})
	prep, err := ti.cl.Prepare(ctx, workload.Q1Src, "p")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := prep.Exec(ctx, query.Bindings{"p": relation.Int(1)}); err != nil {
		t.Fatal(err)
	}
	st, err := ti.cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine.Size == 0 || st.Engine.PlanCacheLen == 0 {
		t.Fatalf("engine stats empty: %+v", st.Engine)
	}
	if st.Handles != 1 {
		t.Fatalf("Handles = %d, want 1", st.Handles)
	}
	def := st.Tenants["default"]
	if def.Admitted == 0 || def.MeasuredReads == 0 {
		t.Fatalf("default tenant ledger empty: %+v", def)
	}
}

// TestConcurrentClientsAndCommitters races streaming HTTP clients
// against committers through the live serving tier (run under -race):
// every served query must stay within its advertised bound and the tier
// must end balanced (no stuck in-flight slots).
func TestConcurrentClientsAndCommitters(t *testing.T) {
	ctx := context.Background()
	ti := newTier(t, openShard4, server.Config{})
	prep, err := ti.cl.Prepare(ctx, workload.Q1Src, "p")
	if err != nil {
		t.Fatal(err)
	}
	const clients, queriesEach, commits = 4, 15, 20
	var wg sync.WaitGroup
	errCh := make(chan error, clients*queriesEach+commits)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				fixed := query.Bindings{"p": relation.Int(int64((c*31 + i*7) % 120))}
				_, stats, err := prep.Exec(ctx, fixed)
				if err != nil {
					errCh <- fmt.Errorf("client %d query %d: %w", c, i, err)
					return
				}
				if stats.Reads > prep.BoundReads {
					errCh <- fmt.Errorf("client %d query %d: %d reads exceed bound %d", c, i, stats.Reads, prep.BoundReads)
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < commits; i++ {
			u := relation.NewUpdate()
			id := int64(810_000 + i)
			u.Insert("person", relation.Tuple{relation.Int(id), relation.Str(fmt.Sprintf("rw%d", i)), relation.Str("NYC")})
			u.Insert("friend", relation.Tuple{relation.Int(int64(i % 120)), relation.Int(id)})
			if _, err := ti.cl.Commit(ctx, u); err != nil {
				errCh <- fmt.Errorf("commit %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	st, err := ti.cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenants["default"].Inflight != 0 {
		t.Fatalf("in-flight slots leaked: %+v", st.Tenants["default"])
	}
	if st.Engine.CommitSeq != commits {
		t.Fatalf("CommitSeq = %d, want %d", st.Engine.CommitSeq, commits)
	}
}

func mustPrepare(t *testing.T, eng *core.Engine, src string, ctrl []string) *core.PreparedQuery {
	t.Helper()
	q := mustParse(t, src)
	p, err := eng.Prepare(q, query.NewVarSet(ctrl...))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustParse(t *testing.T, src string) *query.Query {
	t.Helper()
	if cq, err := parser.ParseCQ(src); err == nil {
		q, err := cq.Query()
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestViewsOverWire drives the view lifecycle through the HTTP tier on
// single-node and 4-shard backends: a non-controllable query is rejected,
// rescued after POST /views (with the provenance on the prepare
// response), served with bit-identical answers to an in-process Exec
// within the advertised bound, maintained transactionally by wire
// commits, and rejected again after DELETE /views.
func TestViewsOverWire(t *testing.T) {
	backends := []struct {
		name string
		open openFunc
	}{{"single", openSingle}, {"shard4", openShard4}}
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			ctx := context.Background()
			ti := newTier(t, be.open, server.Config{})
			if _, err := ti.cl.Prepare(ctx, backendtest.Q6Src, "p"); !errors.Is(err, core.ErrNotControllable) {
				t.Fatalf("Q6 over base relations: got %v, want ErrNotControllable", err)
			}

			vcfg := workload.DefaultConfig()
			info, err := ti.cl.CreateView(ctx, backendtest.VFolSrc,
				server.ViewEntry{On: []string{"p"}, N: vcfg.MaxFriends + 64, T: 1})
			if err != nil {
				t.Fatalf("CreateView: %v", err)
			}
			if info.Name != "VFol" || info.Rows == 0 {
				t.Fatalf("unexpected view info %+v", info)
			}
			vs, err := ti.cl.Views(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(vs) != 1 || vs[0].Name != "VFol" {
				t.Fatalf("GET /views: %+v", vs)
			}

			remote, err := ti.cl.Prepare(ctx, backendtest.Q6Src, "p")
			if err != nil {
				t.Fatalf("Q6 after CreateView: %v", err)
			}
			if !remote.Rescued || len(remote.Views) != 1 || remote.Views[0] != "VFol" {
				t.Fatalf("prepare response lacks rescue provenance: views=%v rescued=%v", remote.Views, remote.Rescued)
			}
			if !strings.Contains(remote.Explain, "VFol") || !strings.Contains(remote.Explain, "view freshness:") {
				t.Fatalf("wire EXPLAIN misses view provenance:\n%s", remote.Explain)
			}

			local := mustPrepare(t, ti.eng, backendtest.Q6Src, []string{"p"})
			for i := 0; i < 8; i++ {
				fixed := query.Bindings{"p": relation.Int(int64(i * 13 % 120))}
				want, err := local.Exec(ctx, fixed)
				if err != nil {
					t.Fatal(err)
				}
				tuples, stats, err := remote.Exec(ctx, fixed)
				if err != nil {
					t.Fatal(err)
				}
				got := relation.NewTupleSet(len(tuples))
				got.AddAll(tuples)
				if !got.Equal(want.Tuples) {
					t.Fatalf("p=%v: wire %d answers, in-process %d", fixed["p"], got.Len(), want.Tuples.Len())
				}
				if stats.Reads > remote.BoundReads {
					t.Fatalf("p=%v: %d reads exceed advertised bound %d", fixed["p"], stats.Reads, remote.BoundReads)
				}
			}

			// A friend-touching wire commit maintains the view inside the
			// pipeline and the freshness seq tracks the commit seq.
			u := relation.NewUpdate().Insert("friend", relation.Ints(3, 119)).Insert("friend", relation.Ints(119, 3))
			cres, err := ti.cl.Commit(ctx, u)
			if err != nil {
				t.Fatal(err)
			}
			if cres.ViewsMaintained == 0 {
				t.Fatalf("commit response reports no view maintenance: %+v", cres)
			}
			st, err := ti.cl.Status(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(st.Views) != 1 || st.Views[0].FreshSeq != st.Engine.CommitSeq {
				t.Fatalf("statusz views stale: %+v vs commit seq %d", st.Views, st.Engine.CommitSeq)
			}

			if err := ti.cl.DropView(ctx, "VFol"); err != nil {
				t.Fatal(err)
			}
			if _, err := ti.cl.Prepare(ctx, backendtest.Q6Src, "p"); !errors.Is(err, core.ErrNotControllable) {
				t.Fatalf("Q6 after DropView: got %v, want ErrNotControllable", err)
			}
			if vs, err := ti.cl.Views(ctx); err != nil || len(vs) != 0 {
				t.Fatalf("views after drop: %v %v", vs, err)
			}
		})
	}
}
