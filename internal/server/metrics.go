package server

import (
	"net/http"

	"repro/internal/core"
	"repro/internal/obs"
)

// metrics is the serving tier's obs-registry wiring: handle caches for
// the hot-path families (resolved once at construction, so recording is
// an atomic add) plus scrape-time collectors for the gauges that mirror
// engine state. It implements core.Observer, receiving query and commit
// events from the engine's telemetry hook.
//
// Family names, by layer:
//
//	si_query_latency_seconds{name}   histogram  wall time per served query
//	si_query_reads{name}             histogram  TupleReads per served query
//	si_queries_total{name,outcome}   counter    ok | error
//	si_admission_total{tenant,outcome} counter  admitted | rejected_*
//	si_admission_refund_reads{tenant} histogram reserve − measured per release
//	si_plan_cache_ops_total{op}      gauge      hits | misses | evictions (scrape-time)
//	si_commits_total                 counter    commits through Engine.Commit
//	si_commit_phase_seconds{phase}   histogram  validate | maintain | apply | notify
//	si_commit_maintenance_reads      histogram  watcher maintenance reads per commit
//	si_commit_view_reads             histogram  view maintenance reads per commit
//	si_views_maintained_total        counter    view extents maintained by commits
//	si_view_queries_total{name,mode} counter    view-served queries: view | rescued
//	si_engine_views                  gauge      registered materialized views (scrape-time)
//	si_engine_view_epoch             gauge      view-set epoch (scrape-time)
//	si_watch_delta_lag               histogram  commit-seq lag at SSE delivery
//	si_watch_folded_total            counter    commits folded into coalesced deltas
//	si_engine_size                   gauge      |D| (scrape-time)
//	si_engine_commit_seq             gauge      last commit sequence (scrape-time)
//	si_engine_watchers               gauge      live subscriptions (scrape-time)
//	si_shard_lsn_spread              gauge      max−min per-shard LSN (scrape-time)
type metrics struct {
	reg *obs.Registry

	queryLatency obs.HistogramVec
	queryReads   obs.HistogramVec
	queries      obs.CounterVec
	admission    obs.CounterVec
	refund       obs.HistogramVec

	commits     obs.Counter
	commitPhase obs.HistogramVec
	maintReads  *obs.Histogram
	viewReads   *obs.Histogram
	viewsMaint  obs.Counter
	viewQueries obs.CounterVec

	watchLag    *obs.Histogram
	watchFolded obs.Counter

	planCacheOps obs.GaugeVec
	engineSize   obs.Gauge
	commitSeq    obs.Gauge
	watchers     obs.Gauge
	lsnSpread    obs.Gauge
	views        obs.Gauge
	viewEpoch    obs.Gauge
}

func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{
		reg:          reg,
		queryLatency: reg.Histogram("si_query_latency_seconds", "Wall time per served query.", "name"),
		queryReads:   reg.Histogram("si_query_reads", "Tuple reads charged per served query.", "name"),
		queries:      reg.Counter("si_queries_total", "Served query executions by outcome.", "name", "outcome"),
		admission:    reg.Counter("si_admission_total", "Admission decisions by tenant and outcome.", "tenant", "outcome"),
		refund:       reg.Histogram("si_admission_refund_reads", "Reserved-minus-measured reads refunded per release.", "tenant"),
		commits:      reg.Counter("si_commits_total", "Commits applied through the engine pipeline.").With(),
		commitPhase:  reg.Histogram("si_commit_phase_seconds", "Commit pipeline phase wall time.", "phase"),
		maintReads:   reg.Histogram("si_commit_maintenance_reads", "Watcher maintenance reads per commit.").With(),
		viewReads:    reg.Histogram("si_commit_view_reads", "Materialized-view maintenance reads per commit.").With(),
		viewsMaint:   reg.Counter("si_views_maintained_total", "View extents maintained inside commit pipelines.").With(),
		viewQueries:  reg.Counter("si_view_queries_total", "Queries served through materialized views, by mode (view = cheaper plan, rescued = base not controllable).", "name", "mode"),
		watchLag:     reg.Histogram("si_watch_delta_lag", "Engine commit-seq minus delta seq at SSE delivery.").With(),
		watchFolded:  reg.Counter("si_watch_folded_total", "Commits folded into coalesced watch deltas.").With(),
		planCacheOps: reg.Gauge("si_plan_cache_ops_total", "Plan cache lifetime counters.", "op"),
		engineSize:   reg.Gauge("si_engine_size", "Backend size |D| in tuples.").With(),
		commitSeq:    reg.Gauge("si_engine_commit_seq", "Last engine commit sequence number.").With(),
		watchers:     reg.Gauge("si_engine_watchers", "Registered live subscriptions.").With(),
		lsnSpread:    reg.Gauge("si_shard_lsn_spread", "Max minus min per-shard storage LSN (0 on single-node).").With(),
		views:        reg.Gauge("si_engine_views", "Registered materialized views.").With(),
		viewEpoch:    reg.Gauge("si_engine_view_epoch", "View-set epoch embedded in plan-cache keys.").With(),
	}
	return m
}

// ObserveQuery implements core.Observer: per-query latency and reads by
// query name.
func (m *metrics) ObserveQuery(ev core.QueryEvent) {
	m.queryLatency.With(ev.Query).ObserveDuration(ev.Wall)
	m.queryReads.With(ev.Query).Observe(float64(ev.Cost.TupleReads))
	outcome := "ok"
	if ev.Err != nil {
		outcome = "error"
	}
	m.queries.With(ev.Query, outcome).Inc()
	if len(ev.Views) > 0 {
		mode := "view"
		if ev.Rescued {
			mode = "rescued"
		}
		m.viewQueries.With(ev.Query, mode).Inc()
	}
}

// ObserveCommit implements core.Observer: the pipeline phase breakdown
// and maintenance cost.
func (m *metrics) ObserveCommit(ev core.CommitEvent) {
	m.commits.Inc()
	m.commitPhase.With("validate").ObserveDuration(ev.Phases.Validate)
	m.commitPhase.With("maintain").ObserveDuration(ev.Phases.Maintain)
	m.commitPhase.With("apply").ObserveDuration(ev.Phases.Apply)
	m.commitPhase.With("notify").ObserveDuration(ev.Phases.Notify)
	m.maintReads.Observe(float64(ev.Maintenance.TupleReads))
	if ev.Views > 0 {
		m.viewsMaint.Add(float64(ev.Views))
		m.viewReads.Observe(float64(ev.ViewReads))
	}
}

// admitted/rejected record one admission decision.
func (m *metrics) admitted(tenant string) { m.admission.With(tenant, "admitted").Inc() }

func (m *metrics) rejected(tenant, reason string) {
	m.admission.With(tenant, "rejected_"+reason).Inc()
}

// released records one settled execution's refund delta (reserve −
// measured): the honesty gap between the static bound a query was
// admitted under and what it actually read.
func (m *metrics) released(tenant string, charge, reads int64) {
	if refund := charge - reads; refund >= 0 {
		m.refund.With(tenant).Observe(float64(refund))
	}
}

// delta records one delivered watch delta: sequence lag against the
// engine's commit clock, and how many commits were folded into it.
func (m *metrics) delta(lag int64, folded int) {
	if lag >= 0 {
		m.watchLag.Observe(float64(lag))
	}
	if folded > 0 {
		m.watchFolded.Add(float64(folded))
	}
}

// shardVersioned is the optional per-shard LSN surface (shard.Store).
type shardVersioned interface{ ShardVersions() []int64 }

// collect refreshes the scrape-time gauges from live engine state. Called
// on every /metricsz scrape, under no locks beyond the engine's own.
func (m *metrics) collect(eng *core.Engine) {
	st := eng.Stats()
	m.planCacheOps.With("hits").Set(float64(st.PlanCache.Hits))
	m.planCacheOps.With("misses").Set(float64(st.PlanCache.Misses))
	m.planCacheOps.With("evictions").Set(float64(st.PlanCache.Evictions))
	m.engineSize.Set(float64(st.Size))
	m.commitSeq.Set(float64(st.CommitSeq))
	m.watchers.Set(float64(st.Watchers))
	m.views.Set(float64(st.Views))
	m.viewEpoch.Set(float64(st.ViewEpoch))
	spread := int64(0)
	if sv, ok := eng.DB.(shardVersioned); ok {
		vs := sv.ShardVersions()
		if len(vs) > 0 {
			min, max := vs[0], vs[0]
			for _, v := range vs[1:] {
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
			spread = max - min
		}
	}
	m.lsnSpread.Set(float64(spread))
}

// handleMetricsz serves GET /metricsz: scrape-time gauges refreshed, then
// the whole registry in Prometheus text format.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	s.met.collect(s.eng)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.reg.WritePrometheus(w)
}
