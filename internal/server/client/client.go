// Package client is the Go client for the siserve HTTP tier. It keeps
// the engine facade's shape — Prepare returns a prepared handle whose
// Query streams a Rows cursor, Exec collects, Watch yields snapshot +
// deltas — so code written against the in-process engine ports to the
// wire by swapping the constructor, and the conformance suite can run
// the same assertions over both.
//
// Errors are typed end to end: the server's machine-readable bodies are
// converted back to the core sentinels (core.ErrNotControllable,
// core.ErrBudgetExceeded, core.ErrCanceled, ...) and to
// server.AdmissionError for admission rejections, so errors.Is dispatch
// is transport-transparent.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/server"
)

// Client talks to one siserve endpoint on behalf of one tenant.
type Client struct {
	base   string
	tenant string
	hc     *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithTenant sets the tenant name sent as X-SI-Tenant (default
// "default") — the key the server's admission policies dispatch on.
func WithTenant(t string) Option { return func(c *Client) { c.tenant = t } }

// WithHTTPClient substitutes the underlying *http.Client (e.g. an
// httptest server's client).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// New builds a client for a base URL like "http://host:port".
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), tenant: "default", hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// decodeError turns a non-2xx response into the typed error the same
// failure would have produced in process.
func decodeError(resp *http.Response) error {
	var body struct {
		Error *server.ErrorBody `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err := json.Unmarshal(data, &body); err != nil || body.Error == nil {
		return fmt.Errorf("client: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	return body.Error.Err()
}

// post issues one JSON POST and decodes a JSON response into out,
// mapping error bodies to typed errors. Used for the unary endpoints.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-SI-Tenant", c.tenant)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Prepared is a plan handle on the server: the remote analogue of
// core.PreparedQuery, carrying the static bound M the plan serves under.
type Prepared struct {
	c *Client
	// Handle is the server-side plan id.
	Handle string
	Name   string
	Ctrl   []string
	Head   []string
	// BoundReads is the static read bound M from the controllability
	// analysis; BoundCandidates the matching candidate bound.
	BoundReads      int64
	BoundCandidates int64
	// Explain is the server's EXPLAIN rendering of the physical plan.
	Explain string
	// Views names the materialized views the server-side plan reads;
	// Rescued marks a query that is not controllable over the base
	// relations and is served through a view rewriting.
	Views   []string
	Rescued bool
}

// Prepare compiles src for the controlling set ctrl on the server and
// returns the plan handle. Typed failures: core.ErrNotControllable when
// no bounded plan exists, server.AdmissionError when the static bound
// already exceeds the tenant's per-query SLA.
func (c *Client) Prepare(ctx context.Context, src string, ctrl ...string) (*Prepared, error) {
	var resp server.PrepareResponse
	if err := c.post(ctx, "/prepare", &server.PrepareRequest{Query: src, Ctrl: ctrl}, &resp); err != nil {
		return nil, err
	}
	return &Prepared{
		c:               c,
		Handle:          resp.Handle,
		Name:            resp.Name,
		Ctrl:            resp.Ctrl,
		Head:            resp.Head,
		BoundReads:      resp.BoundReads,
		BoundCandidates: resp.BoundCandidates,
		Explain:         resp.Explain,
		Views:           resp.Views,
		Rescued:         resp.Rescued,
	}, nil
}

// QueryOption configures one remote execution, mirroring the engine's
// ExecOptions.
type QueryOption func(*server.QueryRequest)

// WithLimit stops the stream after n answers; the server terminates the
// underlying cursor early, saving the remaining reads.
func WithLimit(n int) QueryOption { return func(r *server.QueryRequest) { r.Limit = n } }

// WithMaxReads sets a runtime read budget below the static bound; it
// also lowers the admission charge to min(bound, n).
func WithMaxReads(n int64) QueryOption { return func(r *server.QueryRequest) { r.MaxReads = n } }

// WithTimeout bounds the server-side execution deadline.
func WithTimeout(ms int64) QueryOption { return func(r *server.QueryRequest) { r.TimeoutMS = ms } }

// WithRequestID tags the execution with an end-to-end request
// identifier: the server threads it through the engine's per-call stats
// into slow-query log lines and echoes it back as X-SI-Request-ID.
func WithRequestID(id string) QueryOption {
	return func(r *server.QueryRequest) { r.RequestID = id }
}

// Rows is a streaming result cursor over the wire: the remote analogue
// of core.Rows. Iterate with Next/Tuple, inspect Err, always Close.
// Closing mid-stream tears the connection down, which cancels the
// server-side cursor and stops further reads.
type Rows struct {
	body  io.ReadCloser
	dec   *json.Decoder
	head  []string
	bound int64
	cur   relation.Tuple
	stats *server.QueryStats
	err   error
	done  bool
}

// Query starts a streaming execution of the prepared plan with the given
// bindings for its controlled variables. The returned cursor's first
// answers are available as soon as the server produces them.
func (p *Prepared) Query(ctx context.Context, fixed query.Bindings, opts ...QueryOption) (*Rows, error) {
	reqBody := &server.QueryRequest{Handle: p.Handle, Bind: server.EncodeBinds(fixed)}
	for _, o := range opts {
		o(reqBody)
	}
	payload, err := json.Marshal(reqBody)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.c.base+"/query", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-SI-Tenant", p.c.tenant)
	resp, err := p.c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	r := &Rows{body: resp.Body, dec: json.NewDecoder(resp.Body)}
	var line server.QueryLine
	if err := r.dec.Decode(&line); err != nil {
		resp.Body.Close()
		return nil, fmt.Errorf("client: reading stream head: %w", err)
	}
	if line.Error != nil {
		resp.Body.Close()
		return nil, line.Error.Err()
	}
	r.head, r.bound = line.Head, line.Bound
	return r, nil
}

// Next advances to the next answer, blocking until the server streams
// one. It returns false at end of stream or on error — check Err.
func (r *Rows) Next() bool {
	if r.done || r.err != nil {
		return false
	}
	var line server.QueryLine
	if err := r.dec.Decode(&line); err != nil {
		r.done = true
		if !errors.Is(err, io.EOF) {
			r.err = fmt.Errorf("client: reading stream: %w", err)
		} else {
			r.err = fmt.Errorf("client: stream ended without stats line")
		}
		return false
	}
	switch {
	case line.Row != nil:
		r.cur = line.Row.Tuple()
		return true
	case line.Stats != nil:
		r.stats, r.done = line.Stats, true
		return false
	case line.Error != nil:
		r.err, r.done = line.Error.Err(), true
		return false
	default:
		r.err, r.done = fmt.Errorf("client: empty stream line"), true
		return false
	}
}

// Tuple returns the current answer (valid after a true Next).
func (r *Rows) Tuple() relation.Tuple { return r.cur }

// Head returns the answer's column names.
func (r *Rows) Head() []string { return r.head }

// Bound returns the enforced read bound the server admitted this
// execution under: min(static bound M, requested max_reads).
func (r *Rows) Bound() int64 { return r.bound }

// Err returns the terminal error, if any, after Next returns false.
func (r *Rows) Err() error { return r.err }

// Stats returns the server's accounting line — measured answers and
// TupleReads against the enforced bound. Non-nil only after the stream
// completed normally (Next returned false with nil Err).
func (r *Rows) Stats() *server.QueryStats { return r.stats }

// Close releases the cursor. Closing before the stream is drained
// disconnects, which cancels the server-side execution.
func (r *Rows) Close() error { return r.body.Close() }

// Exec runs the query to completion and returns all answers plus the
// server's accounting, mirroring PreparedQuery.Exec.
func (p *Prepared) Exec(ctx context.Context, fixed query.Bindings, opts ...QueryOption) ([]relation.Tuple, *server.QueryStats, error) {
	rows, err := p.Query(ctx, fixed, opts...)
	if err != nil {
		return nil, nil, err
	}
	defer rows.Close()
	var out []relation.Tuple
	for rows.Next() {
		out = append(out, rows.Tuple())
	}
	if err := rows.Err(); err != nil {
		return nil, nil, err
	}
	return out, rows.Stats(), nil
}

// Commit applies one transactional update through the server.
func (c *Client) Commit(ctx context.Context, u *relation.Update) (*server.CommitResponse, error) {
	var resp server.CommitResponse
	if err := c.post(ctx, "/commit", server.EncodeUpdate(u), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CreateView materializes def as a transactionally maintained view on
// the server, with optional caller-supplied access entries on the view
// relation. Typed failures mirror Engine.CreateView
// (core.ErrWatchNotMaintainable for unmaintainable definitions).
func (c *Client) CreateView(ctx context.Context, def string, entries ...server.ViewEntry) (*server.ViewResponse, error) {
	var resp server.ViewResponse
	if err := c.post(ctx, "/views", &server.ViewRequest{Def: def, Entries: entries}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// DropView retracts a view by name.
func (c *Client) DropView(ctx context.Context, name string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/views/"+name, nil)
	if err != nil {
		return err
	}
	req.Header.Set("X-SI-Tenant", c.tenant)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	return nil
}

// Views fetches the registered view states.
func (c *Client) Views(ctx context.Context) ([]server.ViewResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/views", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var vs []server.ViewResponse
	if err := json.NewDecoder(resp.Body).Decode(&vs); err != nil {
		return nil, err
	}
	return vs, nil
}

// Status fetches the server's /statusz observability snapshot.
func (c *Client) Status(ctx context.Context) (*server.Statusz, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/statusz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var s server.Statusz
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Watch subscribes to the prepared live query over SSE: the remote
// analogue of PreparedQuery.Watch. The initial snapshot is parsed before
// Watch returns; deltas then arrive via Next. Cancel ctx or Close to
// detach.
type Watch struct {
	cancel context.CancelFunc
	body   io.ReadCloser
	sc     *bufio.Scanner

	// Snapshot fields, valid from construction.
	Head []string
	Seq  int64
	Rows []relation.Tuple
}

// WatchDelta is one received delta event.
type WatchDelta = server.WatchDelta

// Watch opens the SSE stream for the prepared plan with the given
// bindings. reexec forces bounded re-execution for queries that are not
// incrementally maintainable.
func (p *Prepared) Watch(ctx context.Context, fixed query.Bindings, reexec bool) (*Watch, error) {
	ctx, cancel := context.WithCancel(ctx)
	vals := url.Values{"handle": {p.Handle}}
	if len(fixed) > 0 {
		b, err := json.Marshal(server.EncodeBinds(fixed))
		if err != nil {
			cancel()
			return nil, err
		}
		vals.Set("bind", string(b))
	}
	if reexec {
		vals.Set("reexec", "1")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.c.base+"/watch?"+vals.Encode(), nil)
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("X-SI-Tenant", p.c.tenant)
	resp, err := p.c.hc.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer cancel()
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	w := &Watch{cancel: cancel, body: resp.Body, sc: bufio.NewScanner(resp.Body)}
	w.sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	event, data, err := w.nextEvent()
	if err != nil {
		w.Close()
		return nil, err
	}
	if event != "snapshot" {
		w.Close()
		if event == "error" {
			return nil, decodeEventError(data)
		}
		return nil, fmt.Errorf("client: watch: expected snapshot event, got %q", event)
	}
	var snap server.WatchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		w.Close()
		return nil, err
	}
	w.Head, w.Seq, w.Rows = snap.Head, snap.Seq, server.DecodeRows(snap.Rows)
	return w, nil
}

func decodeEventError(data []byte) error {
	var body struct {
		Error *server.ErrorBody `json:"error"`
	}
	if err := json.Unmarshal(data, &body); err != nil || body.Error == nil {
		return fmt.Errorf("client: watch error event: %s", data)
	}
	return body.Error.Err()
}

// nextEvent scans one SSE event (event: line, data: line, blank line).
func (w *Watch) nextEvent() (event string, data []byte, err error) {
	for w.sc.Scan() {
		line := w.sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = append(data, strings.TrimPrefix(line, "data: ")...)
		case line == "":
			if event != "" || len(data) > 0 {
				return event, data, nil
			}
		}
	}
	if err := w.sc.Err(); err != nil {
		return "", nil, err
	}
	return "", nil, io.EOF
}

// Next blocks for the next delta event. It returns io.EOF after the
// server's clean "close" event (server drain or subscription close), and
// a typed error if the subscription failed engine-side.
func (w *Watch) Next() (WatchDelta, error) {
	event, data, err := w.nextEvent()
	if err != nil {
		return WatchDelta{}, err
	}
	switch event {
	case "delta":
		var d WatchDelta
		if err := json.Unmarshal(data, &d); err != nil {
			return WatchDelta{}, err
		}
		return d, nil
	case "close":
		return WatchDelta{}, io.EOF
	case "error":
		return WatchDelta{}, decodeEventError(data)
	default:
		return WatchDelta{}, fmt.Errorf("client: watch: unexpected event %q", event)
	}
}

// Close detaches the watch: the connection drops and the server frees
// the subscription. Idempotent.
func (w *Watch) Close() error {
	w.cancel()
	return w.body.Close()
}
