package server

import (
	"sync"
	"time"
)

// TenantPolicy is one tenant's SLA contract with the serving tier. The
// success-tolerant discipline (after PIQL): because every prepared plan
// carries a static read bound M, the tier can decide *before running a
// query* whether it fits the tenant's resource envelope — and reject it
// with the bound attached, instead of letting an expensive query degrade
// everyone else mid-flight. A zero field means "unlimited" for that rule.
type TenantPolicy struct {
	// MaxBound rejects any query whose effective static bound — min(plan
	// bound M, client MaxReads) — exceeds it. This is the per-query SLA:
	// "no single request may be entitled to more than MaxBound reads".
	MaxBound int64
	// ReadBudget caps the tenant's cumulative admitted read entitlement
	// per Window. Admission reserves each query's effective bound against
	// the window; completion refunds the unused part (bound − measured
	// reads), so the budget tracks entitlement pessimistically and actual
	// consumption optimistically.
	ReadBudget int64
	// Window is the budget accounting window; 0 defaults to one second.
	Window time.Duration
	// MaxConcurrent caps the tenant's in-flight queries.
	MaxConcurrent int
}

// tenantState is one tenant's runtime admission ledger.
type tenantState struct {
	policy   TenantPolicy
	inflight int
	// spent is the read entitlement reserved in the current window;
	// windowEnd is when it resets.
	spent     int64
	windowEnd time.Time

	// Lifetime counters, surfaced at /statusz and by sibench -serve.
	admitted            int64
	rejectedBound       int64
	rejectedBudget      int64
	rejectedConcurrency int64
	measuredReads       int64
	measuredAnswers     int64
}

// TenantStats is one tenant's admission counters as served at /statusz.
type TenantStats struct {
	Admitted            int64 `json:"admitted"`
	RejectedBound       int64 `json:"rejected_bound"`
	RejectedBudget      int64 `json:"rejected_budget"`
	RejectedConcurrency int64 `json:"rejected_concurrency"`
	Inflight            int   `json:"inflight"`
	// MeasuredReads is the sum of actual TupleReads over completed
	// queries — always ≤ the entitlement the same queries reserved.
	MeasuredReads   int64 `json:"measured_reads"`
	MeasuredAnswers int64 `json:"measured_answers"`
}

// admitter enforces per-tenant policies. All state is guarded by one
// mutex: admission is a handful of integer comparisons, never I/O.
type admitter struct {
	mu       sync.Mutex
	def      TenantPolicy
	policies map[string]TenantPolicy
	tenants  map[string]*tenantState
}

func newAdmitter(def TenantPolicy, policies map[string]TenantPolicy) *admitter {
	return &admitter{def: def, policies: policies, tenants: map[string]*tenantState{}}
}

func (a *admitter) state(tenant string) *tenantState {
	ts := a.tenants[tenant]
	if ts == nil {
		pol, ok := a.policies[tenant]
		if !ok {
			pol = a.def
		}
		if pol.Window <= 0 {
			pol.Window = time.Second
		}
		ts = &tenantState{policy: pol}
		a.tenants[tenant] = ts
	}
	return ts
}

// checkBound is the prepare-time SLA check: does a plan with static bound
// M fit this tenant's per-query ceiling at all? It reserves nothing.
func (a *admitter) checkBound(tenant string, bound int64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	ts := a.state(tenant)
	if ts.policy.MaxBound > 0 && bound > ts.policy.MaxBound {
		ts.rejectedBound++
		return &AdmissionError{Tenant: tenant, Reason: "bound", Bound: bound, Limit: ts.policy.MaxBound}
	}
	return nil
}

// admit runs the full admission decision for one query execution with
// effective read entitlement `charge` (= min(plan bound, client
// MaxReads)). On success it reserves the charge against the tenant's
// window budget and an in-flight slot; the caller MUST call release
// exactly once with the measured reads. On failure it returns the typed
// rejection and reserves nothing.
func (a *admitter) admit(tenant string, charge int64, now time.Time) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	ts := a.state(tenant)
	if ts.policy.MaxConcurrent > 0 && ts.inflight >= ts.policy.MaxConcurrent {
		ts.rejectedConcurrency++
		return &AdmissionError{Tenant: tenant, Reason: "concurrency", Bound: charge, Limit: int64(ts.policy.MaxConcurrent)}
	}
	if ts.policy.MaxBound > 0 && charge > ts.policy.MaxBound {
		ts.rejectedBound++
		return &AdmissionError{Tenant: tenant, Reason: "bound", Bound: charge, Limit: ts.policy.MaxBound}
	}
	if ts.policy.ReadBudget > 0 {
		if now.After(ts.windowEnd) {
			ts.spent = 0
			ts.windowEnd = now.Add(ts.policy.Window)
		}
		if ts.spent+charge > ts.policy.ReadBudget {
			ts.rejectedBudget++
			return &AdmissionError{Tenant: tenant, Reason: "budget", Bound: charge, Limit: ts.policy.ReadBudget - ts.spent}
		}
		ts.spent += charge
	}
	ts.inflight++
	ts.admitted++
	return nil
}

// release settles an admitted query: the in-flight slot frees, and the
// window budget refunds the unused entitlement (charge − reads, never
// negative — a query that read less than it was entitled to gives the
// difference back to its tenant's window).
func (a *admitter) release(tenant string, charge, reads, answers int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ts := a.state(tenant)
	ts.inflight--
	if refund := charge - reads; refund > 0 && ts.policy.ReadBudget > 0 {
		ts.spent -= refund
		if ts.spent < 0 {
			ts.spent = 0
		}
	}
	ts.measuredReads += reads
	ts.measuredAnswers += answers
}

// stats snapshots every tenant's counters.
func (a *admitter) stats() map[string]TenantStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]TenantStats, len(a.tenants))
	for name, ts := range a.tenants {
		out[name] = TenantStats{
			Admitted:            ts.admitted,
			RejectedBound:       ts.rejectedBound,
			RejectedBudget:      ts.rejectedBudget,
			RejectedConcurrency: ts.rejectedConcurrency,
			Inflight:            ts.inflight,
			MeasuredReads:       ts.measuredReads,
			MeasuredAnswers:     ts.measuredAnswers,
		}
	}
	return out
}
