package server

import (
	"encoding/json"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// TestObservabilityJSONGolden pins the exact JSON key set of every struct
// on the observability wire surface — /statusz, the commit response, and
// everything they nest (EngineStats, PlanCacheStats, TenantStats,
// store.Counters, core.CommitPhases). All keys are snake_case; a Go field
// rename must not silently rename a dashboard's field. Every field is
// populated with a distinct value so a dropped or misrouted tag cannot
// hide behind a zero.
func TestObservabilityJSONGolden(t *testing.T) {
	golden := []struct {
		name string
		v    any
		want string
	}{
		{
			"statusz",
			Statusz{
				Engine: core.EngineStats{
					Size:            9,
					PlanCache:       core.PlanCacheStats{Hits: 1, Misses: 2, Evictions: 3},
					PlanCacheLen:    4,
					Optimizer:       "on+stats",
					CommitSeq:       5,
					StoreSeq:        6,
					CommittedVolume: map[string]int64{"friend": 7},
					Recosts:         8,
					Watchers:        10,
				},
				Tenants: map[string]TenantStats{"t0": {
					Admitted:            11,
					RejectedBound:       12,
					RejectedBudget:      13,
					RejectedConcurrency: 14,
					Inflight:            15,
					MeasuredReads:       16,
					MeasuredAnswers:     17,
				}},
				Handles:  18,
				Draining: true,
			},
			`{"engine":{"size":9,"plan_cache":{"hits":1,"misses":2,"evictions":3},` +
				`"plan_cache_len":4,"optimizer":"on+stats","commit_seq":5,"store_seq":6,` +
				`"committed_volume":{"friend":7},"recosts":8,"watchers":10},` +
				`"tenants":{"t0":{"admitted":11,"rejected_bound":12,"rejected_budget":13,` +
				`"rejected_concurrency":14,"inflight":15,"measured_reads":16,"measured_answers":17}},` +
				`"handles":18,"draining":true}`,
		},
		{
			"commit_result",
			core.CommitResult{
				Seq:      1,
				StoreSeq: 2,
				Size:     3,
				Watchers: 4,
				Maintenance: store.Counters{
					TupleReads:   5,
					IndexLookups: 6,
					Scans:        7,
					Memberships:  8,
					TimeUnits:    9,
				},
				Recosted: true,
				Phases: core.CommitPhases{
					Validate: 1 * time.Nanosecond,
					Maintain: 2 * time.Nanosecond,
					Apply:    3 * time.Nanosecond,
					Notify:   4 * time.Nanosecond,
				},
			},
			`{"seq":1,"store_seq":2,"size":3,"watchers":4,` +
				`"maintenance":{"tuple_reads":5,"index_lookups":6,"scans":7,"memberships":8,"time_units":9},` +
				`"recosted":true,"phases":{"validate":1,"maintain":2,"apply":3,"notify":4}}`,
		},
	}
	for _, g := range golden {
		got, err := json.Marshal(g.v)
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		if string(got) != g.want {
			t.Errorf("%s JSON drifted:\n got %s\nwant %s", g.name, got, g.want)
		}
	}
}

var snakeTag = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// TestWireTagsSnakeCase is the runtime twin of sivet's wirejson analyzer:
// it walks every struct reachable from the wire roots and asserts each
// exported field carries an explicit snake_case json tag (or "-"), so a
// new field cannot leak a CamelCase key even on a tree where sivet was
// not run.
func TestWireTagsSnakeCase(t *testing.T) {
	roots := []any{
		PrepareRequest{}, PrepareResponse{}, QueryRequest{}, QueryLine{},
		QueryStats{}, CommitRequest{}, CommitResponse{}, ViewEntry{},
		ViewRequest{}, ViewResponse{}, WatchSnapshot{}, WatchDelta{},
		ErrorBody{}, AdmissionError{}, Statusz{}, TenantStats{},
		core.EngineStats{}, core.CommitResult{}, store.Counters{},
	}
	seen := make(map[reflect.Type]bool)
	var walk func(rt reflect.Type)
	walk = func(rt reflect.Type) {
		for rt.Kind() == reflect.Pointer || rt.Kind() == reflect.Slice ||
			rt.Kind() == reflect.Array || rt.Kind() == reflect.Map {
			rt = rt.Elem()
		}
		if rt.Kind() != reflect.Struct || seen[rt] {
			return
		}
		seen[rt] = true
		// Types with a custom MarshalJSON define their own wire shape.
		if rt.Implements(reflect.TypeFor[json.Marshaler]()) ||
			reflect.PointerTo(rt).Implements(reflect.TypeFor[json.Marshaler]()) {
			return
		}
		for i := range rt.NumField() {
			f := rt.Field(i)
			if !f.IsExported() {
				continue
			}
			tag, ok := f.Tag.Lookup("json")
			name, _, _ := strings.Cut(tag, ",")
			switch {
			case !ok:
				t.Errorf("%s.%s: exported wire field has no json tag", rt, f.Name)
			case name == "-":
				continue
			case name == "":
				t.Errorf("%s.%s: json tag %q names no key", rt, f.Name, tag)
			case !snakeTag.MatchString(name):
				t.Errorf("%s.%s: json key %q is not snake_case", rt, f.Name, name)
			}
			walk(f.Type)
		}
	}
	for _, r := range roots {
		walk(reflect.TypeOf(r))
	}
	if len(seen) < len(roots) {
		t.Fatalf("walked %d struct types from %d roots; type aliasing collapsed the surface?", len(seen), len(roots))
	}
}
