// Package server is the network serving tier: an HTTP front end exposing
// the full engine lifecycle — Prepare / Query / Commit / Watch — over the
// wire, with PIQL-style success-tolerant admission control in front of
// it. The paper's controllability analysis yields a *static* read bound M
// at prepare time, which is exactly what success-tolerant query
// processing needs: a query whose compile-time bound exceeds its tenant's
// SLA threshold is rejected *before* it runs, with a typed,
// machine-readable error carrying the bound, instead of degrading the
// whole tier under load.
//
// Wire contract (DESIGN.md §6):
//
//	POST /prepare  {"query": src, "ctrl": [...]}            → plan handle + static bound M + EXPLAIN
//	POST /query    {"handle", "bind", "limit", "max_reads"} → chunked NDJSON answer stream + final stats
//	POST /commit   {"ins": {rel: [tuple...]}, "del": ...}   → CommitResult (engine seq, store LSN, maintenance)
//	GET  /watch    ?handle=&bind=                           → SSE: snapshot event, then per-commit delta events
//	GET  /statusz                                           → engine + admission observability snapshot (JSON)
//
// The error taxonomy maps onto HTTP statuses: ErrNotControllable → 422,
// admission rejections and ErrBudgetExceeded → 429 (with the bound in the
// body), ErrCanceled → 499, ErrInvalidUpdate and malformed requests →
// 400, unknown handles → 404, a draining server → 503. Bodies are always
// {"error": {"code", "message", ...}} and round-trip back to the typed
// sentinels through ErrorBody.Err, so a client dispatches with errors.Is
// exactly as it would in process.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// Val is the wire form of a relation.Value: integers as JSON numbers,
// strings as JSON strings, null as JSON null. Decoding is exact (int64
// via json.Number, not float64).
type Val relation.Value

// MarshalJSON encodes the value in its natural JSON shape.
func (v Val) MarshalJSON() ([]byte, error) {
	rv := relation.Value(v)
	switch rv.Kind() {
	case relation.KindInt:
		return strconv.AppendInt(nil, rv.AsInt(), 10), nil
	case relation.KindString:
		return json.Marshal(rv.AsString())
	default:
		return []byte("null"), nil
	}
}

// UnmarshalJSON decodes a JSON number (int64), string, or null.
func (v *Val) UnmarshalJSON(b []byte) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	var raw any
	if err := dec.Decode(&raw); err != nil {
		return err
	}
	switch x := raw.(type) {
	case nil:
		*v = Val(relation.Null())
	case string:
		*v = Val(relation.Str(x))
	case json.Number:
		n, err := strconv.ParseInt(x.String(), 10, 64)
		if err != nil {
			return fmt.Errorf("server: non-integer number %q in value", x)
		}
		*v = Val(relation.Int(n))
	default:
		return fmt.Errorf("server: unsupported JSON value %T", raw)
	}
	return nil
}

// Row is the wire form of a tuple: a JSON array of Vals.
type Row []Val

// EncodeRow converts a tuple to its wire form.
func EncodeRow(t relation.Tuple) Row {
	r := make(Row, len(t))
	for i, v := range t {
		r[i] = Val(v)
	}
	return r
}

// Tuple converts the wire row back to a tuple.
func (r Row) Tuple() relation.Tuple {
	t := make(relation.Tuple, len(r))
	for i, v := range r {
		t[i] = relation.Value(v)
	}
	return t
}

// EncodeRows converts a tuple slice to wire rows (never nil, so JSON
// renders [] rather than null).
func EncodeRows(ts []relation.Tuple) []Row {
	rs := make([]Row, len(ts))
	for i, t := range ts {
		rs[i] = EncodeRow(t)
	}
	return rs
}

// DecodeRows converts wire rows back to tuples.
func DecodeRows(rs []Row) []relation.Tuple {
	ts := make([]relation.Tuple, len(rs))
	for i, r := range rs {
		ts[i] = r.Tuple()
	}
	return ts
}

// Binds is the wire form of query.Bindings.
type Binds map[string]Val

// EncodeBinds converts bindings to their wire form.
func EncodeBinds(b query.Bindings) Binds {
	out := make(Binds, len(b))
	for k, v := range b {
		out[k] = Val(v)
	}
	return out
}

// Bindings converts wire binds back to engine bindings.
func (b Binds) Bindings() query.Bindings {
	out := make(query.Bindings, len(b))
	for k, v := range b {
		out[k] = relation.Value(v)
	}
	return out
}

// PrepareRequest is the body of POST /prepare.
type PrepareRequest struct {
	// Query is the query source, in either syntax ("Q(x) := ..." or the
	// rule form "Q(x) :- atom, ...").
	Query string `json:"query"`
	// Ctrl is the controlling set x̄ the plan should be prepared for.
	Ctrl []string `json:"ctrl"`
}

// PrepareResponse is the success body of POST /prepare: the plan handle
// plus everything the static analysis proved about it.
type PrepareResponse struct {
	Handle string   `json:"handle"`
	Name   string   `json:"name"`
	Ctrl   []string `json:"ctrl"`
	Head   []string `json:"head"`
	// BoundReads is the static read bound M: the PIQL-style contract this
	// plan serves under, known before any execution.
	BoundReads      int64  `json:"bound_reads"`
	BoundCandidates int64  `json:"bound_candidates"`
	Explain         string `json:"explain"`
	// Views names the materialized views the plan reads (empty for a pure
	// base plan); Rescued marks a query that is not controllable over the
	// base relations and is served through a view rewriting instead, so a
	// tenant can tell a rescued admission from a base one.
	Views   []string `json:"views,omitempty"`
	Rescued bool     `json:"rescued,omitempty"`
}

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	Handle string `json:"handle"`
	Bind   Binds  `json:"bind"`
	// Limit stops the stream after n answers (LIMIT over the wire: the
	// remaining fetches are never issued server-side).
	Limit int `json:"limit,omitempty"`
	// MaxReads sets a runtime read budget below the static bound; it also
	// lowers the admission charge to min(bound, max_reads).
	MaxReads int64 `json:"max_reads,omitempty"`
	// TimeoutMS bounds the server-side execution deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// RequestID tags the execution end to end: it rides the per-call
	// ExecStats through every store charge and appears in slow-query log
	// lines. The X-SI-Request-ID header takes precedence; either way the
	// id is echoed back as X-SI-Request-ID on the response.
	RequestID string `json:"request_id,omitempty"`
}

// QueryLine is one NDJSON line of a /query response stream: exactly one
// of the fields is set. The first line carries Head (and the enforced
// bound), then one Row line per answer, then a terminal Stats or Error
// line.
type QueryLine struct {
	Head  []string    `json:"head,omitempty"`
	Bound int64       `json:"bound,omitempty"`
	Row   Row         `json:"row,omitempty"`
	Stats *QueryStats `json:"stats,omitempty"`
	Error *ErrorBody  `json:"error,omitempty"`
}

// QueryStats is the terminal accounting line of a completed /query
// stream: the measured work of this call, mirroring core.Answer's Cost.
type QueryStats struct {
	Answers int64 `json:"answers"`
	// Reads is the measured TupleReads; Reads ≤ Bound for every admitted
	// query (the load harness and serve-smoke gate assert it).
	Reads int64 `json:"reads"`
	Bound int64 `json:"bound"`
}

// CommitRequest is the body of POST /commit: ΔD = (∇D, ΔD) keyed by
// relation name.
type CommitRequest struct {
	Ins map[string][]Row `json:"ins,omitempty"`
	Del map[string][]Row `json:"del,omitempty"`
}

// Update converts the wire commit back to a relation.Update.
func (c *CommitRequest) Update() *relation.Update {
	u := relation.NewUpdate()
	for rel, rs := range c.Ins {
		for _, r := range rs {
			u.Insert(rel, r.Tuple())
		}
	}
	for rel, rs := range c.Del {
		for _, r := range rs {
			u.Delete(rel, r.Tuple())
		}
	}
	return u
}

// EncodeUpdate converts an update to its wire form.
func EncodeUpdate(u *relation.Update) *CommitRequest {
	c := &CommitRequest{Ins: map[string][]Row{}, Del: map[string][]Row{}}
	for rel, ts := range u.Ins {
		if len(ts) > 0 {
			c.Ins[rel] = EncodeRows(ts)
		}
	}
	for rel, ts := range u.Del {
		if len(ts) > 0 {
			c.Del[rel] = EncodeRows(ts)
		}
	}
	return c
}

// CommitResponse is the success body of POST /commit, mirroring
// core.CommitResult.
type CommitResponse struct {
	Seq              int64 `json:"seq"`
	StoreSeq         int64 `json:"store_seq"`
	Size             int   `json:"size"`
	Watchers         int   `json:"watchers"`
	MaintenanceReads int64 `json:"maintenance_reads"`
	// ViewsMaintained is the number of materialized views this commit
	// maintained inside the pipeline; ViewReads the tuple reads that
	// maintenance charged.
	ViewsMaintained int   `json:"views_maintained,omitempty"`
	ViewReads       int64 `json:"view_reads,omitempty"`
	Recosted        bool  `json:"recosted"`
	// Phases is the commit pipeline's wall-time breakdown
	// (core.CommitPhases), durations in nanoseconds.
	Phases core.CommitPhases `json:"phases"`
}

// ViewEntry is the wire form of a caller-supplied access entry for a
// view relation (the "index it at will" part of Section 6). Rel is
// implied by the view being created; a nil Proj means a plain entry.
type ViewEntry struct {
	On   []string `json:"on"`
	Proj []string `json:"proj,omitempty"`
	N    int      `json:"n"`
	T    int      `json:"t,omitempty"`
}

// ViewRequest is the body of POST /views: the defining CQ plus optional
// extra access entries, on top of the ones the engine derives from the
// definition's own controllability.
type ViewRequest struct {
	Def     string      `json:"def"`
	Entries []ViewEntry `json:"entries,omitempty"`
}

// ViewResponse is the success body of POST /views (and one element of
// GET /views): core.ViewInfo verbatim.
type ViewResponse = core.ViewInfo

// WatchSnapshot is the payload of the initial "snapshot" SSE event of
// GET /watch.
type WatchSnapshot struct {
	Head []string `json:"head"`
	Seq  int64    `json:"seq"`
	Rows []Row    `json:"rows"`
}

// WatchDelta is the payload of each "delta" SSE event: one (possibly
// folded) commit's effect on the watched answer set, with the bounded
// maintenance work it charged.
type WatchDelta struct {
	Seq    int64 `json:"seq"`
	Ins    []Row `json:"ins,omitempty"`
	Del    []Row `json:"del,omitempty"`
	Reads  int64 `json:"reads"`
	Bound  int64 `json:"bound"`
	Folded int   `json:"folded,omitempty"`
	Reexec bool  `json:"reexec,omitempty"`
}

// Error codes carried in ErrorBody.Code: each one maps to a typed
// sentinel on the client side (ErrorBody.Err) and to an HTTP status on
// the server side (statusFor).
const (
	CodeNotControllable      = "not_controllable"
	CodeAdmissionBound       = "admission_bound"
	CodeAdmissionBudget      = "admission_budget"
	CodeAdmissionConcurrency = "admission_concurrency"
	CodeBudgetExceeded       = "budget_exceeded"
	CodeCanceled             = "canceled"
	CodeInvalidUpdate        = "invalid_update"
	CodeUnboundHead          = "unbound_head"
	CodeNotMaintainable      = "not_maintainable"
	CodeSlowConsumer         = "slow_consumer"
	CodeInvalidQuery         = "invalid_query"
	CodeViewExists           = "view_exists"
	CodeUnknownView          = "unknown_view"
	CodeBadRequest           = "bad_request"
	CodeNotFound             = "not_found"
	CodeDraining             = "draining"
	CodeInternal             = "internal"
)

// ErrorBody is the machine-readable error envelope every non-2xx response
// (and every terminal NDJSON/SSE error line) carries under {"error": ...}.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Bound is the query's static read bound M, set on admission and
	// budget rejections so the client knows exactly what was refused.
	Bound int64 `json:"bound,omitempty"`
	// Limit is the threshold the bound crossed (tenant max bound,
	// remaining window budget, or concurrency cap).
	Limit  int64  `json:"limit,omitempty"`
	Tenant string `json:"tenant,omitempty"`
}

// ErrAdmission is the sentinel every admission rejection wraps: the query
// was refused at the door by a tenant SLA policy, not by execution.
var ErrAdmission = errors.New("query rejected by admission control")

// AdmissionError is the typed admission rejection: which tenant, which
// rule ("bound", "budget", "concurrency"), the query's static bound and
// the threshold it crossed. It wraps ErrAdmission, and — for the
// bound/budget rules, which are read-budget refusals in PIQL terms —
// core.ErrBudgetExceeded too.
type AdmissionError struct {
	Tenant string `json:"tenant"`
	Reason string `json:"reason"`
	Bound  int64  `json:"bound"`
	Limit  int64  `json:"limit"`
}

// Error renders the rejection.
func (e *AdmissionError) Error() string {
	return fmt.Sprintf("server: tenant %q: query rejected by admission control (%s): static bound %d exceeds limit %d",
		e.Tenant, e.Reason, e.Bound, e.Limit)
}

// Unwrap exposes the sentinel chain for errors.Is.
func (e *AdmissionError) Unwrap() []error {
	if e.Reason == "concurrency" {
		return []error{ErrAdmission}
	}
	return []error{ErrAdmission, core.ErrBudgetExceeded}
}

// Err converts a wire error body back to a typed Go error: the wrapped
// sentinel chain matches what the same failure would have produced in
// process, so errors.Is dispatch is backend-transparent.
func (b *ErrorBody) Err() error {
	switch b.Code {
	case CodeNotControllable:
		return fmt.Errorf("server: %s: %w", b.Message, core.ErrNotControllable)
	case CodeAdmissionBound:
		return &AdmissionError{Tenant: b.Tenant, Reason: "bound", Bound: b.Bound, Limit: b.Limit}
	case CodeAdmissionBudget:
		return &AdmissionError{Tenant: b.Tenant, Reason: "budget", Bound: b.Bound, Limit: b.Limit}
	case CodeAdmissionConcurrency:
		return &AdmissionError{Tenant: b.Tenant, Reason: "concurrency", Bound: b.Bound, Limit: b.Limit}
	case CodeBudgetExceeded:
		return fmt.Errorf("server: %s: %w", b.Message, core.ErrBudgetExceeded)
	case CodeCanceled:
		return fmt.Errorf("server: %s: %w", b.Message, core.ErrCanceled)
	case CodeInvalidUpdate:
		return fmt.Errorf("server: %s: %w", b.Message, core.ErrInvalidUpdate)
	case CodeUnboundHead:
		return fmt.Errorf("server: %s: %w", b.Message, core.ErrUnboundHead)
	case CodeNotMaintainable:
		return fmt.Errorf("server: %s: %w", b.Message, core.ErrWatchNotMaintainable)
	case CodeSlowConsumer:
		return fmt.Errorf("server: %s: %w", b.Message, core.ErrSlowConsumer)
	case CodeInvalidQuery:
		return fmt.Errorf("server: %s: %w", b.Message, core.ErrInvalidQuery)
	case CodeViewExists:
		return fmt.Errorf("server: %s: %w", b.Message, core.ErrViewExists)
	case CodeUnknownView:
		return fmt.Errorf("server: %s: %w", b.Message, core.ErrUnknownView)
	default:
		return fmt.Errorf("server: %s: %s", b.Code, b.Message)
	}
}

// bodyFor classifies an engine (or admission) error into its wire body.
func bodyFor(err error) *ErrorBody {
	var adm *AdmissionError
	if errors.As(err, &adm) {
		code := CodeAdmissionBound
		switch adm.Reason {
		case "budget":
			code = CodeAdmissionBudget
		case "concurrency":
			code = CodeAdmissionConcurrency
		}
		return &ErrorBody{Code: code, Message: err.Error(), Bound: adm.Bound, Limit: adm.Limit, Tenant: adm.Tenant}
	}
	switch {
	case errors.Is(err, core.ErrNotControllable):
		return &ErrorBody{Code: CodeNotControllable, Message: err.Error()}
	case errors.Is(err, core.ErrBudgetExceeded):
		return &ErrorBody{Code: CodeBudgetExceeded, Message: err.Error()}
	case errors.Is(err, core.ErrCanceled):
		return &ErrorBody{Code: CodeCanceled, Message: err.Error()}
	case errors.Is(err, core.ErrInvalidUpdate):
		return &ErrorBody{Code: CodeInvalidUpdate, Message: err.Error()}
	case errors.Is(err, core.ErrUnboundHead):
		return &ErrorBody{Code: CodeUnboundHead, Message: err.Error()}
	case errors.Is(err, core.ErrWatchNotMaintainable):
		return &ErrorBody{Code: CodeNotMaintainable, Message: err.Error()}
	case errors.Is(err, core.ErrSlowConsumer):
		return &ErrorBody{Code: CodeSlowConsumer, Message: err.Error()}
	case errors.Is(err, core.ErrInvalidQuery):
		return &ErrorBody{Code: CodeInvalidQuery, Message: err.Error()}
	case errors.Is(err, core.ErrViewExists):
		return &ErrorBody{Code: CodeViewExists, Message: err.Error()}
	case errors.Is(err, core.ErrUnknownView):
		return &ErrorBody{Code: CodeUnknownView, Message: err.Error()}
	default:
		return &ErrorBody{Code: CodeBadRequest, Message: err.Error()}
	}
}

// statusFor maps a wire error code to its HTTP status: the serving tier's
// half of the typed taxonomy. 499 is the de-facto "client closed request"
// status for canceled work.
func statusFor(code string) int {
	switch code {
	case CodeNotControllable:
		return 422
	case CodeAdmissionBound, CodeAdmissionBudget, CodeAdmissionConcurrency, CodeBudgetExceeded:
		return 429
	case CodeCanceled:
		return 499
	case CodeInvalidUpdate, CodeBadRequest, CodeUnboundHead, CodeInvalidQuery:
		return 400
	case CodeViewExists:
		return 409
	case CodeNotMaintainable:
		return 422
	case CodeNotFound, CodeUnknownView:
		return 404
	case CodeDraining:
		return 503
	default:
		return 500
	}
}
