package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/query"
)

// Config configures a Server.
type Config struct {
	// Engine is the serving engine. Required.
	Engine *core.Engine
	// DefaultPolicy applies to tenants without an entry in Policies. The
	// zero policy admits everything (no SLA).
	DefaultPolicy TenantPolicy
	// Policies maps tenant name (the X-SI-Tenant request header) to its
	// SLA policy.
	Policies map[string]TenantPolicy
	// WatchBuffer is the per-watcher bounded delta queue depth handed to
	// core.WithDeltaBuffer: a lagging SSE consumer beyond it receives
	// folded net deltas rather than an error. 0 defaults to 64.
	WatchBuffer int
	// Metrics, when non-nil, turns the tier's instrumentation on: query
	// latency/reads histograms, admission and plan-cache counters, commit
	// phase timings and watch lag are recorded into the registry, and
	// GET /metricsz serves it in Prometheus text format. Nil disables
	// recording and the endpoint.
	Metrics *obs.Registry
	// Logger receives the engine's structured slow-query / slow-commit
	// records (log/slog) when the matching threshold is set.
	Logger *slog.Logger
	// SlowQuery and SlowCommit are the wall-time thresholds at or above
	// which a query or commit is logged; zero disables that log class.
	SlowQuery  time.Duration
	SlowCommit time.Duration
}

// Server serves an engine over HTTP. It implements http.Handler; see the
// package comment for the wire contract. Construct with NewServer, shut
// down with Drain.
type Server struct {
	eng      *core.Engine
	adm      *admitter
	watchBuf int
	mux      *http.ServeMux
	met      *metrics // nil when Config.Metrics was nil

	// mu guards draining and the in-flight WaitGroup Add (so Drain's Wait
	// cannot race a new request), plus the handle registry.
	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup
	// drainCh closes when Drain begins: long-lived watch streams select
	// on it and shut their subscriptions down cleanly.
	drainCh chan struct{}

	handles map[string]*handle
	byKey   map[string]string
	nextID  int64
}

// handle is one registered prepared plan.
type handle struct {
	id   string
	prep *core.PreparedQuery
}

// NewServer builds the serving tier over an engine.
func NewServer(cfg Config) *Server {
	if cfg.Engine == nil {
		panic("server: Config.Engine is required")
	}
	if cfg.WatchBuffer <= 0 {
		cfg.WatchBuffer = 64
	}
	s := &Server{
		eng:      cfg.Engine,
		adm:      newAdmitter(cfg.DefaultPolicy, cfg.Policies),
		watchBuf: cfg.WatchBuffer,
		mux:      http.NewServeMux(),
		drainCh:  make(chan struct{}),
		handles:  map[string]*handle{},
		byKey:    map[string]string{},
	}
	s.mux.HandleFunc("POST /prepare", s.handlePrepare)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /commit", s.handleCommit)
	s.mux.HandleFunc("GET /watch", s.handleWatch)
	s.mux.HandleFunc("POST /views", s.handleViewCreate)
	s.mux.HandleFunc("GET /views", s.handleViewList)
	s.mux.HandleFunc("DELETE /views/{name}", s.handleViewDrop)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	if cfg.Metrics != nil {
		s.met = newMetrics(cfg.Metrics)
		s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	}
	// Telemetry flows through the engine's hook: the metrics sink gets
	// every query/commit event, the logger the slow ones. Installed here
	// so mounting the tier is the one switch that turns serving
	// observability on.
	if s.met != nil || cfg.Logger != nil {
		tc := core.TelemetryConfig{
			Logger:     cfg.Logger,
			SlowQuery:  cfg.SlowQuery,
			SlowCommit: cfg.SlowCommit,
		}
		if s.met != nil {
			tc.Observer = s.met
		}
		cfg.Engine.SetTelemetry(tc)
	}
	return s
}

// ServeHTTP dispatches one request. A draining server refuses everything
// but /statusz and /metricsz with 503 so load balancers and metric
// scrapers can still watch it.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/statusz" && r.URL.Path != "/metricsz" {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			writeError(w, &ErrorBody{Code: CodeDraining, Message: "server is draining"})
			return
		}
		s.inflight.Add(1)
		s.mu.Unlock()
		defer s.inflight.Done()
	}
	s.mux.ServeHTTP(w, r)
}

// Drain gracefully shuts the tier down: new requests get 503, in-flight
// query streams run to completion, and watch streams close their
// subscriptions and send a final "close" event. It returns when every
// in-flight request has finished or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// Handles reports the number of registered plan handles.
func (s *Server) Handles() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.handles)
}

// Statusz is the GET /statusz body: the engine's unified stats snapshot
// plus the serving tier's own gauges.
type Statusz struct {
	Engine   core.EngineStats       `json:"engine"`
	Tenants  map[string]TenantStats `json:"tenants"`
	Handles  int                    `json:"handles"`
	Draining bool                   `json:"draining"`
	// Views is the registered materialized-view state (name, definition,
	// rows, freshness seq, entries, broken), in registration order.
	Views []core.ViewInfo `json:"views,omitempty"`
}

// Status snapshots the tier for /statusz (and for in-process harnesses).
func (s *Server) Status() Statusz {
	s.mu.Lock()
	draining, nh := s.draining, len(s.handles)
	s.mu.Unlock()
	return Statusz{
		Engine:   s.eng.Stats(),
		Tenants:  s.adm.stats(),
		Handles:  nh,
		Draining: draining,
		Views:    s.eng.Views(),
	}
}

func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-SI-Tenant"); t != "" {
		return t
	}
	return "default"
}

// requestID resolves the call's request identifier: the X-SI-Request-ID
// header wins, then the request body's request_id.
func requestID(r *http.Request, bodyID string) string {
	if id := r.Header.Get("X-SI-Request-ID"); id != "" {
		return id
	}
	return bodyID
}

// recordRejection mirrors a typed admission rejection into the metrics
// registry, labeled by the rejection reason.
func (s *Server) recordRejection(tenant string, err error) {
	if s.met == nil {
		return
	}
	var adm *AdmissionError
	if errors.As(err, &adm) {
		s.met.rejected(tenant, adm.Reason)
	}
}

// recordRelease mirrors an admitted execution's settlement (refund delta)
// into the metrics registry.
func (s *Server) recordRelease(tenant string, charge, reads int64) {
	if s.met != nil {
		s.met.released(tenant, charge, reads)
	}
}

type errorResponse struct {
	Error *ErrorBody `json:"error"`
}

func writeError(w http.ResponseWriter, body *ErrorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(statusFor(body.Code))
	json.NewEncoder(w).Encode(errorResponse{Error: body})
}

func writeErr(w http.ResponseWriter, err error) { writeError(w, bodyFor(err)) }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// parseServing parses a serving query in either syntax: the rule form
// "Q(x) :- atoms" first, then the formula form "Q(x) := body".
func parseServing(src string) (*query.Query, error) {
	if cq, err := parser.ParseCQ(src); err == nil {
		return cq.Query()
	}
	return parser.ParseQuery(src)
}

// handlePrepare compiles a query for a controlling set, runs the
// prepare-time SLA check (reject if the static bound exceeds the tenant's
// MaxBound — the success-tolerant gate), registers a plan handle, and
// returns the handle with the bound and EXPLAIN text. Handles dedup on
// (query, ctrl): re-preparing returns the same handle.
func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req PrepareRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, &ErrorBody{Code: CodeBadRequest, Message: "prepare: " + err.Error()})
		return
	}
	q, err := parseServing(req.Query)
	if err != nil {
		writeError(w, &ErrorBody{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	ctrl := query.NewVarSet(req.Ctrl...)
	prep, err := s.eng.Prepare(q, ctrl)
	if err != nil {
		writeErr(w, err)
		return
	}
	bound := prep.Plan().Bound
	if err := s.adm.checkBound(tenantOf(r), bound.Reads); err != nil {
		s.recordRejection(tenantOf(r), err)
		writeErr(w, err)
		return
	}

	key := q.String() + "\x00" + ctrl.Key()
	s.mu.Lock()
	id, ok := s.byKey[key]
	if !ok {
		s.nextID++
		id = "h" + strconv.FormatInt(s.nextID, 10)
		s.handles[id] = &handle{id: id, prep: prep}
		s.byKey[key] = id
	}
	s.mu.Unlock()

	writeJSON(w, &PrepareResponse{
		Handle:          id,
		Name:            q.Name,
		Ctrl:            ctrl.Sorted(),
		Head:            append([]string(nil), q.Head...),
		BoundReads:      bound.Reads,
		BoundCandidates: bound.Candidates,
		Explain:         prep.Explain(),
		Views:           prep.Plan().Views,
		Rescued:         prep.Plan().Rescued,
	})
}

func (s *Server) handle(id string) *handle {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handles[id]
}

// handleQuery admits and executes one prepared query, streaming the
// answer as NDJSON: a head line carrying the enforced read bound, one
// line per answer flushed as produced (a client that stops reading after
// LIMIT answers saves the server the remaining reads), and a terminal
// stats-or-error line. The admission charge is the effective entitlement
// min(static bound M, client max_reads), reserved against the tenant's
// window budget up front and refunded down to the measured reads on
// completion.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, &ErrorBody{Code: CodeBadRequest, Message: "query: " + err.Error()})
		return
	}
	h := s.handle(req.Handle)
	if h == nil {
		writeError(w, &ErrorBody{Code: CodeNotFound, Message: "unknown handle " + strconv.Quote(req.Handle)})
		return
	}
	tenant := tenantOf(r)
	charge := h.prep.Plan().Bound.Reads
	if req.MaxReads > 0 && req.MaxReads < charge {
		charge = req.MaxReads
	}
	if err := s.adm.admit(tenant, charge, time.Now()); err != nil {
		s.recordRejection(tenant, err)
		writeErr(w, err)
		return
	}
	if s.met != nil {
		s.met.admitted(tenant)
	}

	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	opts := []core.ExecOption{core.WithoutTrace()}
	if req.Limit > 0 {
		opts = append(opts, core.WithLimit(req.Limit))
	}
	if req.MaxReads > 0 {
		opts = append(opts, core.WithMaxReads(req.MaxReads))
	}
	// Request-ID propagation: the X-SI-Request-ID header (or the body's
	// request_id) rides the per-call ExecStats down through every store
	// charge and back out in slow-query log lines; it is echoed on the
	// response so both ends of the wire agree on the name of the work.
	reqID := requestID(r, req.RequestID)
	if reqID != "" {
		opts = append(opts, core.WithRequestID(reqID))
		w.Header().Set("X-SI-Request-ID", reqID)
	}
	rows, err := h.prep.Query(ctx, req.Bind.Bindings(), opts...)
	if err != nil {
		s.adm.release(tenant, charge, 0, 0)
		s.recordRelease(tenant, charge, 0)
		writeErr(w, err)
		return
	}
	var answers int64
	defer func() {
		rows.Close()
		reads := rows.Cost().TupleReads
		s.adm.release(tenant, charge, reads, answers)
		s.recordRelease(tenant, charge, reads)
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.Encode(QueryLine{Head: rows.Head(), Bound: charge})
	if flusher != nil {
		flusher.Flush()
	}
	for rows.Next() {
		if err := enc.Encode(QueryLine{Row: EncodeRow(rows.Tuple())}); err != nil {
			return // client went away; defer settles admission
		}
		answers++
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := rows.Err(); err != nil {
		enc.Encode(QueryLine{Error: bodyFor(err)})
		return
	}
	enc.Encode(QueryLine{Stats: &QueryStats{
		Answers: answers,
		Reads:   rows.Cost().TupleReads,
		Bound:   charge,
	}})
}

// handleCommit applies one transactional update through Engine.Commit and
// returns the commit result (engine sequence, store LSN, bounded
// maintenance accounting).
func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req CommitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, &ErrorBody{Code: CodeBadRequest, Message: "commit: " + err.Error()})
		return
	}
	res, err := s.eng.Commit(r.Context(), req.Update())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, &CommitResponse{
		Seq:              res.Seq,
		StoreSeq:         res.StoreSeq,
		Size:             res.Size,
		Watchers:         res.Watchers,
		MaintenanceReads: res.Maintenance.TupleReads,
		ViewsMaintained:  res.ViewsMaintained,
		ViewReads:        res.ViewReads,
		Recosted:         res.Recosted,
		Phases:           res.Phases,
	})
}

// handleViewCreate materializes one view through Engine.CreateView: the
// defining CQ plus optional caller-supplied access entries (the view is a
// materialized relation, so it can be indexed at will). Success returns
// the registered view's state; an unmaintainable definition maps to 422
// through the usual taxonomy.
func (s *Server) handleViewCreate(w http.ResponseWriter, r *http.Request) {
	var req ViewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, &ErrorBody{Code: CodeBadRequest, Message: "views: " + err.Error()})
		return
	}
	def, err := parser.ParseCQ(req.Def)
	if err != nil {
		writeError(w, &ErrorBody{Code: CodeBadRequest, Message: err.Error()})
		return
	}
	entries := make([]access.Entry, len(req.Entries))
	for i, e := range req.Entries {
		entries[i] = access.Entry{Rel: def.Name, On: e.On, Proj: e.Proj, N: e.N, T: max(e.T, 1)}
	}
	info, err := s.eng.CreateView(def, entries...)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, &info)
}

// handleViewList serves GET /views: the registered view states in
// registration order.
func (s *Server) handleViewList(w http.ResponseWriter, r *http.Request) {
	views := s.eng.Views()
	if views == nil {
		views = []core.ViewInfo{}
	}
	writeJSON(w, views)
}

// handleViewDrop retracts one view: the relation is dropped from the
// backend and the next Prepare no longer sees it.
func (s *Server) handleViewDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.eng.DropView(name); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, map[string]string{"dropped": name})
}

// sseWrite emits one Server-Sent Event and flushes it.
func sseWrite(w http.ResponseWriter, flusher http.Flusher, event string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
		return err
	}
	if flusher != nil {
		flusher.Flush()
	}
	return nil
}

// handleWatch serves a live query as an SSE stream: a "snapshot" event
// with the full current answer, then one "delta" event per commit (folded
// net deltas under consumer lag, per the engine's bounded buffer), then a
// "close" event when the subscription ends — on client request, server
// drain, or engine-side failure (which arrives as an "error" event
// first). Query parameters: handle, bind (JSON object), reexec=1 to force
// bounded re-execution for non-maintainable queries.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	h := s.handle(qp.Get("handle"))
	if h == nil {
		writeError(w, &ErrorBody{Code: CodeNotFound, Message: "unknown handle " + strconv.Quote(qp.Get("handle"))})
		return
	}
	var binds Binds
	if raw := qp.Get("bind"); raw != "" {
		if err := json.Unmarshal([]byte(raw), &binds); err != nil {
			writeError(w, &ErrorBody{Code: CodeBadRequest, Message: "watch: bad bind: " + err.Error()})
			return
		}
	}
	opts := []core.WatchOption{core.WithDeltaBuffer(s.watchBuf)}
	if qp.Get("reexec") == "1" {
		opts = append(opts, core.WithReexec())
	}
	l, err := h.prep.Watch(r.Context(), binds.Bindings(), opts...)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer l.Close()

	// A side goroutine turns "client went away" and "server draining" into
	// a subscription Close, which ends the Deltas stream cleanly below.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-r.Context().Done():
			l.Close()
		case <-s.drainCh:
			l.Close()
		case <-done:
		}
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	snap := WatchSnapshot{Head: l.Head(), Seq: l.Seq(), Rows: EncodeRows(l.Snapshot().Tuples())}
	if err := sseWrite(w, flusher, "snapshot", snap); err != nil {
		return
	}
	for d, err := range l.Deltas() {
		if err != nil {
			sseWrite(w, flusher, "error", errorResponse{Error: bodyFor(err)})
			break
		}
		wd := WatchDelta{
			Seq:    d.Seq,
			Ins:    EncodeRows(d.Ins),
			Del:    EncodeRows(d.Del),
			Reads:  d.Cost.TupleReads,
			Bound:  d.Bound,
			Folded: d.Folded,
			Reexec: d.Reexec,
		}
		if s.met != nil {
			// Delta lag in commit sequence numbers: how far behind the
			// engine's commit clock this delivery is (folding under
			// consumer lag shows up here).
			s.met.delta(s.eng.CommitSeq()-d.Seq, d.Folded)
		}
		if sseWrite(w, flusher, "delta", wd) != nil {
			return
		}
	}
	sseWrite(w, flusher, "close", struct{}{})
}

// handleStatusz serves the unified observability snapshot. It stays up
// during drain so orchestration can watch the tier empty out.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Status())
}
