// Package cq implements the classical conjunctive-query machinery the
// paper's algorithms lean on: tableaux (canonical databases), homomorphisms,
// containment and equivalence à la Chandra–Merlin, and core computation
// (minimization).
//
// These are the engines behind several results reproduced here: the O(1)
// bound for Boolean CQs in Corollary 3.2 (a homomorphism image of size ‖Q‖
// witnesses truth), the set-cover structure of QDSI for CQ (Theorem 3.3),
// and the equivalence checks of rewritings using views (Theorem 6.1).
package cq

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/relation"
)

// freezePrefix marks constants that encode frozen variables in canonical
// databases. The NUL byte keeps them out of the way of ordinary string
// constants.
const freezePrefix = "\x00var:"

// Freeze returns the canonical-database constant for a variable.
func Freeze(name string) relation.Value { return relation.Str(freezePrefix + name) }

// IsFrozen reports whether a value is a frozen variable, returning its
// name.
func IsFrozen(v relation.Value) (string, bool) {
	if v.Kind() != relation.KindString {
		return "", false
	}
	s := v.AsString()
	if len(s) > len(freezePrefix) && s[:len(freezePrefix)] == freezePrefix {
		return s[len(freezePrefix):], true
	}
	return "", false
}

// freezeTerm maps variables to frozen constants and keeps constants.
func freezeTerm(t query.Term) relation.Value {
	if t.IsVar() {
		return Freeze(t.Name())
	}
	return t.Value()
}

// CanonicalDB builds the tableau of q as a database over schema: one tuple
// per atom with variables frozen. It also returns the frozen head tuple.
// The CQ must be equality-free (call ApplyEqs first); an error is returned
// otherwise, or if an atom does not fit the schema.
func CanonicalDB(q *query.CQ, schema *relation.Schema) (*relation.Database, relation.Tuple, error) {
	if len(q.Eqs) > 0 {
		return nil, nil, fmt.Errorf("cq: CanonicalDB requires an equality-free CQ (got %d eqs)", len(q.Eqs))
	}
	db := relation.NewDatabase(schema)
	for _, a := range q.Atoms {
		t := make(relation.Tuple, len(a.Args))
		for i, arg := range a.Args {
			t[i] = freezeTerm(arg)
		}
		if _, err := db.Insert(a.Rel, t); err != nil {
			return nil, nil, err
		}
	}
	head := make(relation.Tuple, len(q.Head))
	for i, h := range q.Head {
		head[i] = freezeTerm(h)
	}
	return db, head, nil
}

// Homomorphism searches for a homomorphism h from `from` to `to`: a mapping
// of from's variables to to's terms such that every atom of from maps to an
// atom of to and h maps from's head to to's head position-wise. Both CQs
// must be equality-free. It returns the mapping and whether one exists.
func Homomorphism(from, to *query.CQ) (query.Subst, bool) {
	if len(from.Eqs) > 0 || len(to.Eqs) > 0 {
		ff, ok := from.ApplyEqs()
		if !ok {
			// Unsatisfiable 'from' maps vacuously... but head constants may
			// conflict; treat as no homomorphism for simplicity.
			return nil, false
		}
		tt, ok := to.ApplyEqs()
		if !ok {
			return nil, false
		}
		return Homomorphism(ff, tt)
	}
	if len(from.Head) != len(to.Head) {
		return nil, false
	}
	h := make(query.Subst)
	// Seed with the head mapping.
	for i := range from.Head {
		if !bindTerm(h, from.Head[i], to.Head[i]) {
			return nil, false
		}
	}
	if mapAtoms(from.Atoms, to.Atoms, h) {
		return h, true
	}
	return nil, false
}

// bindTerm extends h so that h(ft) = tt, returning false on conflict.
func bindTerm(h query.Subst, ft query.Term, tt query.Term) bool {
	if !ft.IsVar() {
		// Constants map to themselves only.
		return !tt.IsVar() && ft.Value() == tt.Value()
	}
	if cur, ok := h[ft.Name()]; ok {
		return cur == tt
	}
	h[ft.Name()] = tt
	return true
}

// mapAtoms backtracks over from-atoms, matching each to some to-atom.
func mapAtoms(from []*query.Atom, to []*query.Atom, h query.Subst) bool {
	if len(from) == 0 {
		return true
	}
	a := from[0]
	for _, b := range to {
		if b.Rel != a.Rel || len(b.Args) != len(a.Args) {
			continue
		}
		var added []string
		ok := true
		for i := range a.Args {
			ft, tt := a.Args[i], b.Args[i]
			if ft.IsVar() {
				if cur, has := h[ft.Name()]; has {
					if cur != tt {
						ok = false
						break
					}
					continue
				}
				h[ft.Name()] = tt
				added = append(added, ft.Name())
				continue
			}
			if tt.IsVar() || ft.Value() != tt.Value() {
				ok = false
				break
			}
		}
		if ok && mapAtoms(from[1:], to, h) {
			return true
		}
		for _, v := range added {
			delete(h, v)
		}
	}
	return false
}

// Contained reports q1 ⊆ q2 (for every database D, q1(D) ⊆ q2(D)), by the
// Chandra–Merlin theorem: q1 ⊆ q2 iff there is a homomorphism from q2 to
// q1.
func Contained(q1, q2 *query.CQ) bool {
	_, ok := Homomorphism(q2, q1)
	return ok
}

// Equivalent reports q1 ≡ q2 (containment both ways).
func Equivalent(q1, q2 *query.CQ) bool {
	return Contained(q1, q2) && Contained(q2, q1)
}

// ContainedInUCQ reports q ⊆ u for a CQ q and UCQ u: by Sagiv–Yannakakis,
// q ⊆ ∪ᵢ qᵢ iff q ⊆ qᵢ for some i.
func ContainedInUCQ(q *query.CQ, u *query.UCQ) bool {
	for _, d := range u.Disjunct {
		if Contained(q, d) {
			return true
		}
	}
	return false
}

// UCQContained reports u1 ⊆ u2 for UCQs: every disjunct of u1 contained in
// u2.
func UCQContained(u1, u2 *query.UCQ) bool {
	for _, d := range u1.Disjunct {
		if !ContainedInUCQ(d, u2) {
			return false
		}
	}
	return true
}

// UCQEquivalent reports u1 ≡ u2.
func UCQEquivalent(u1, u2 *query.UCQ) bool {
	return UCQContained(u1, u2) && UCQContained(u2, u1)
}

// Minimize computes the core of q: an equivalent subquery with a minimal
// set of atoms. The input must be satisfiable; equality atoms are
// eliminated first. The result is a fresh CQ.
func Minimize(q *query.CQ) (*query.CQ, error) {
	cur := q
	if len(q.Eqs) > 0 {
		c, ok := q.ApplyEqs()
		if !ok {
			return nil, fmt.Errorf("cq: Minimize on unsatisfiable query %s", q.Name)
		}
		cur = c
	} else {
		cur = q.Clone()
	}
	for {
		removed := false
		for i := range cur.Atoms {
			cand := &query.CQ{
				Name:  cur.Name,
				Head:  cur.Head,
				Atoms: append(append([]*query.Atom(nil), cur.Atoms[:i]...), cur.Atoms[i+1:]...),
			}
			// Dropping an atom relaxes the query: cur ⊆ cand always. The
			// candidate is equivalent iff cand ⊆ cur, i.e. iff there is a
			// homomorphism from cur to cand.
			if cand.Validate() != nil {
				continue
			}
			if _, ok := Homomorphism(cur, cand); ok {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur, nil
		}
	}
}

// HomomorphismImages enumerates the homomorphism images of q in db: for
// each answer-producing assignment of q's body variables to database
// values, the set of base tuples used (one per atom). The callback receives
// the produced answer tuple and the image; returning false stops the
// enumeration. Images are exactly the candidate witness sets for scale
// independence of CQs: Q(image) contains the answer, and |image| ≤ ‖Q‖.
func HomomorphismImages(db *relation.Database, q *query.CQ, yield func(answer relation.Tuple, image map[string][]relation.Tuple) bool) error {
	cur := q
	if len(q.Eqs) > 0 {
		c, ok := q.ApplyEqs()
		if !ok {
			return nil
		}
		cur = c
	}
	env := make(query.Bindings)
	used := make([]relation.Tuple, len(cur.Atoms))
	stopped := false
	var rec func(i int) error
	rec = func(i int) error {
		if stopped {
			return nil
		}
		if i == len(cur.Atoms) {
			ans := make(relation.Tuple, len(cur.Head))
			for j, h := range cur.Head {
				if h.IsVar() {
					v, ok := env[h.Name()]
					if !ok {
						return fmt.Errorf("cq: unbound head variable %q", h.Name())
					}
					ans[j] = v
				} else {
					ans[j] = h.Value()
				}
			}
			image := make(map[string][]relation.Tuple)
			for k, a := range cur.Atoms {
				image[a.Rel] = append(image[a.Rel], used[k])
			}
			if !yield(ans, image) {
				stopped = true
			}
			return nil
		}
		a := cur.Atoms[i]
		r := db.Rel(a.Rel)
		if r == nil {
			return fmt.Errorf("cq: unknown relation %q", a.Rel)
		}
		for _, tu := range r.Tuples() {
			bound, ok := matchAtom(a, tu, env)
			if !ok {
				continue
			}
			used[i] = tu
			if err := rec(i + 1); err != nil {
				return err
			}
			for _, v := range bound {
				delete(env, v)
			}
			if stopped {
				return nil
			}
		}
		return nil
	}
	return rec(0)
}

func matchAtom(a *query.Atom, tu relation.Tuple, env query.Bindings) (bound []string, ok bool) {
	if len(a.Args) != len(tu) {
		return nil, false
	}
	for i, arg := range a.Args {
		if !arg.IsVar() {
			if arg.Value() != tu[i] {
				for _, v := range bound {
					delete(env, v)
				}
				return nil, false
			}
			continue
		}
		name := arg.Name()
		if v, has := env[name]; has {
			if v != tu[i] {
				for _, v := range bound {
					delete(env, v)
				}
				return nil, false
			}
			continue
		}
		env[name] = tu[i]
		bound = append(bound, name)
	}
	return bound, true
}

// StandardizeApart renames every variable of q with the given suffix so
// that two CQs share no variables; used before combining queries (view
// unfolding, rewriting search).
func StandardizeApart(q *query.CQ, suffix string) *query.CQ {
	sub := make(query.Subst)
	for v := range q.BodyVars().Union(q.HeadVars()) {
		sub[v] = query.Var(v + suffix)
	}
	return q.Rename(sub)
}
