package cq

import (
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relation"
)

func mustCQ(t *testing.T, src string) *query.CQ {
	t.Helper()
	q, err := parser.ParseCQ(src)
	if err != nil {
		t.Fatalf("%q: %v", src, err)
	}
	return q
}

func TestHomomorphismBasics(t *testing.T) {
	// Q2(x) :- R(x, y) is contained in Q1(x) :- R(x, y), R(y, z)? No:
	// containment goes the other way.
	q1 := mustCQ(t, "Q(x) :- R(x, y), R(y, z)")
	q2 := mustCQ(t, "Q(x) :- R(x, y)")
	// hom from q2 to q1 exists (map y to q1's y), so q1 ⊆ q2.
	if _, ok := Homomorphism(q2, q1); !ok {
		t.Error("expected homomorphism q2 -> q1")
	}
	if !Contained(q1, q2) {
		t.Error("q1 should be contained in q2")
	}
	if Contained(q2, q1) {
		t.Error("q2 should not be contained in q1")
	}
	if Equivalent(q1, q2) {
		t.Error("q1, q2 not equivalent")
	}
}

func TestHomomorphismConstants(t *testing.T) {
	qa := mustCQ(t, "Q(x) :- R(x, 1)")
	qb := mustCQ(t, "Q(x) :- R(x, y)")
	// hom qb -> qa maps y to 1: qa ⊆ qb.
	if !Contained(qa, qb) {
		t.Error("qa ⊆ qb expected")
	}
	if Contained(qb, qa) {
		t.Error("qb ⊄ qa expected")
	}
	// Head constants must match exactly.
	qc := mustCQ(t, "Q(1) :- R(1, y)")
	qd := mustCQ(t, "Q(2) :- R(2, y)")
	if Contained(qc, qd) || Contained(qd, qc) {
		t.Error("distinct head constants should not be comparable")
	}
}

func TestEquivalenceUpToRenaming(t *testing.T) {
	qa := mustCQ(t, "Q(x) :- R(x, y), S(y)")
	qb := mustCQ(t, "Q(u) :- R(u, v), S(v)")
	if !Equivalent(qa, qb) {
		t.Error("alpha-equivalent queries not recognized")
	}
}

func TestMinimize(t *testing.T) {
	// Redundant atom: R(x, y), R(x, z) minimizes to R(x, y).
	q := mustCQ(t, "Q(x) :- R(x, y), R(x, z)")
	m, err := Minimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 1 {
		t.Errorf("minimized to %s", m)
	}
	if !Equivalent(q, m) {
		t.Error("minimization broke equivalence")
	}
	// A path of length 2 is already minimal.
	q2 := mustCQ(t, "Q(x) :- R(x, y), R(y, z)")
	m2, err := Minimize(q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Atoms) != 2 {
		t.Errorf("over-minimized: %s", m2)
	}
	// Classic: triangle with an apex; extra atom folds into the triangle.
	q3 := mustCQ(t, "Q() :- E(x, y), E(y, z), E(z, x), E(x, w), E(w, z)")
	m3, err := Minimize(q3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m3.Atoms) != 3 {
		t.Errorf("triangle core has %d atoms: %s", len(m3.Atoms), m3)
	}
}

func TestCanonicalDB(t *testing.T) {
	s := relation.MustSchema(relation.MustRelSchema("R", "a", "b"))
	q := mustCQ(t, "Q(x) :- R(x, y), R(y, 3)")
	db, head, err := CanonicalDB(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() != 2 {
		t.Fatalf("canonical db size = %d", db.Size())
	}
	if name, ok := IsFrozen(head[0]); !ok || name != "x" {
		t.Errorf("head = %v", head)
	}
	if !db.Rel("R").Contains(relation.NewTuple(Freeze("y"), relation.Int(3))) {
		t.Error("canonical tuple missing")
	}
}

// Chandra–Merlin sanity: evaluating q over the canonical database of p
// yields p's frozen head iff there is a homomorphism q -> p.
func TestHomomorphismViaCanonicalDB(t *testing.T) {
	s := relation.MustSchema(relation.MustRelSchema("R", "a", "b"))
	pairs := []struct {
		p, q string
		want bool
	}{
		{"Q(x) :- R(x, y), R(y, z)", "Q(x) :- R(x, y)", true},
		{"Q(x) :- R(x, y)", "Q(x) :- R(x, y), R(y, z)", false},
		{"Q(x) :- R(x, x)", "Q(x) :- R(x, y), R(y, x)", true},
	}
	for _, c := range pairs {
		p, q := mustCQ(t, c.p), mustCQ(t, c.q)
		db, head, err := CanonicalDB(p, s)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := eval.AnswersCQ(eval.DBSource{DB: db}, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := ans.Contains(head)
		if got != c.want {
			t.Errorf("canonical eval: hom(%q -> %q) = %v, want %v", c.q, c.p, got, c.want)
		}
		if _, ok := Homomorphism(q, p); ok != c.want {
			t.Errorf("Homomorphism(%q -> %q) = %v, want %v", c.q, c.p, ok, c.want)
		}
	}
}

// Soundness of containment on random databases: if Contained(q1, q2) then
// q1(D) ⊆ q2(D) for random D.
func TestContainmentSoundQuick(t *testing.T) {
	s := relation.MustSchema(
		relation.MustRelSchema("R", "a", "b"),
		relation.MustRelSchema("S", "a"),
	)
	corpus := []string{
		"Q(x) :- R(x, y)",
		"Q(x) :- R(x, y), S(y)",
		"Q(x) :- R(x, y), R(y, z)",
		"Q(x) :- R(x, x)",
		"Q(x) :- R(x, 1)",
		"Q(x) :- S(x)",
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		db := relation.NewDatabase(s)
		for i := 0; i < 15; i++ {
			db.MustInsert("R", relation.Ints(int64(rng.Intn(4)), int64(rng.Intn(4))))
		}
		for i := 0; i < 4; i++ {
			db.MustInsert("S", relation.Ints(int64(rng.Intn(4))))
		}
		for _, s1 := range corpus {
			for _, s2 := range corpus {
				q1, q2 := mustCQ(t, s1), mustCQ(t, s2)
				if !Contained(q1, q2) {
					continue
				}
				a1, err := eval.AnswersCQ(eval.DBSource{DB: db}, q1, nil)
				if err != nil {
					t.Fatal(err)
				}
				a2, err := eval.AnswersCQ(eval.DBSource{DB: db}, q2, nil)
				if err != nil {
					t.Fatal(err)
				}
				for _, tu := range a1.Tuples() {
					if !a2.Contains(tu) {
						t.Fatalf("trial %d: Contained(%q, %q) but %v ∈ q1(D)\\q2(D)", trial, s1, s2, tu)
					}
				}
			}
		}
	}
}

// Minimization must preserve answers on random databases.
func TestMinimizePreservesAnswersQuick(t *testing.T) {
	s := relation.MustSchema(relation.MustRelSchema("R", "a", "b"))
	corpus := []string{
		"Q(x) :- R(x, y), R(x, z)",
		"Q(x) :- R(x, y), R(y, z), R(x, w)",
		"Q(x, y) :- R(x, y), R(x, x)",
		"Q() :- R(x, y), R(y, x), R(x, z)",
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		db := relation.NewDatabase(s)
		for i := 0; i < 12; i++ {
			db.MustInsert("R", relation.Ints(int64(rng.Intn(3)), int64(rng.Intn(3))))
		}
		for _, src := range corpus {
			q := mustCQ(t, src)
			m, err := Minimize(q)
			if err != nil {
				t.Fatal(err)
			}
			a, err := eval.AnswersCQ(eval.DBSource{DB: db}, q, nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := eval.AnswersCQ(eval.DBSource{DB: db}, m, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b) {
				t.Fatalf("trial %d %q: answers changed by minimization", trial, src)
			}
		}
	}
}

func TestHomomorphismImages(t *testing.T) {
	s := relation.MustSchema(
		relation.MustRelSchema("R", "a", "b"),
		relation.MustRelSchema("S", "a"),
	)
	db := relation.NewDatabase(s)
	db.MustInsert("R", relation.Ints(1, 2))
	db.MustInsert("R", relation.Ints(1, 3))
	db.MustInsert("S", relation.Ints(2))
	q := mustCQ(t, "Q(x) :- R(x, y), S(y)")
	var count int
	err := HomomorphismImages(db, q, func(ans relation.Tuple, image map[string][]relation.Tuple) bool {
		count++
		if !ans.Equal(relation.Ints(1)) {
			t.Errorf("answer = %v", ans)
		}
		if len(image["R"]) != 1 || len(image["S"]) != 1 {
			t.Errorf("image = %v", image)
		}
		// The image must witness the answer: evaluating q over it yields ans.
		sub := relation.NewDatabase(s)
		for rel, ts := range image {
			for _, tu := range ts {
				sub.MustInsert(rel, tu)
			}
		}
		a, err := eval.AnswersCQ(eval.DBSource{DB: sub}, q, nil)
		if err != nil || !a.Contains(ans) {
			t.Errorf("image does not witness answer: %v, %v", a, err)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 { // only y=2 satisfies S
		t.Errorf("images = %d", count)
	}
}

func TestHomomorphismImagesEarlyStop(t *testing.T) {
	s := relation.MustSchema(relation.MustRelSchema("R", "a", "b"))
	db := relation.NewDatabase(s)
	for i := int64(0); i < 10; i++ {
		db.MustInsert("R", relation.Ints(i, i+1))
	}
	q := mustCQ(t, "Q(x) :- R(x, y)")
	count := 0
	if err := HomomorphismImages(db, q, func(relation.Tuple, map[string][]relation.Tuple) bool {
		count++
		return count < 3
	}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("early stop: count = %d", count)
	}
}

func TestStandardizeApart(t *testing.T) {
	q := mustCQ(t, "Q(x) :- R(x, y)")
	r := StandardizeApart(q, "_1")
	if r.Head[0] != query.Var("x_1") {
		t.Errorf("head = %v", r.Head)
	}
	if !r.BodyVars().Equal(query.NewVarSet("x_1", "y_1")) {
		t.Errorf("body vars = %v", r.BodyVars())
	}
	// Original untouched.
	if q.Head[0] != query.Var("x") {
		t.Error("original mutated")
	}
}
