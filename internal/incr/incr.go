// Package incr implements incremental scale independence (Section 5 of the
// paper): answering Q on demand after updates ΔD by accessing a bounded
// number of base tuples, given the previously computed answer Q(D).
//
// Two layers are provided:
//
//   - CQMaintainer: the constructive side (Corollary 5.3, Proposition 5.5,
//     Example 5.6). For a CQ Q and updates to base relations, the
//     maintenance queries ΔQ replace one occurrence of an updated relation
//     by the delta; each is x̄-controlled under A extended with the
//     whole-delta entry, so each evaluates boundedly through the core
//     engine. Deletions additionally require Q to be controlled by all its
//     head variables (the re-derivation check of Proposition 5.5(2)).
//
//   - DecideDeltaQSI: the decision side (∆QSI, Theorems 5.1/5.2), a
//     definition-level decider for small instances: for every candidate
//     update, search for a witness D_Q ⊆ D of size ≤ M from which the
//     exact delta is computable.
package incr

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/qdsi"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/store"
)

// occurrencePlan precompiles the maintenance query for one occurrence of
// an updatable relation in the CQ body.
type occurrencePlan struct {
	atom  *query.Atom
	rest  query.Formula
	deriv *core.Derivation
}

// CQMaintainer incrementally maintains Q(ā, D) for a conjunctive query
// with fixed values ā for a controlling set x̄.
type CQMaintainer struct {
	eng   *core.Engine
	q     *query.CQ
	fixed query.Bindings

	answers *relation.TupleSet
	// occurrence plans per relation name
	plans map[string][]occurrencePlan
	// verification derivation for deletions (nil when deletions are not
	// supported by the controllability conditions).
	verify *core.Derivation
	// head terms in output order
	head []query.Term
}

// NewCQMaintainer checks the conditions of Proposition 5.5 and precompiles
// the maintenance plans. The initial answer Q(ā, D) is computed by naive
// evaluation (the paper's offline precomputation step).
func NewCQMaintainer(eng *core.Engine, q *query.CQ, fixed query.Bindings) (*CQMaintainer, error) {
	if len(q.Eqs) > 0 {
		applied, ok := q.ApplyEqs()
		if !ok {
			return nil, fmt.Errorf("incr: query %s is unsatisfiable", q.Name)
		}
		q = applied
	}
	m := &CQMaintainer{
		eng:   eng,
		q:     q,
		fixed: fixed.Clone(),
		plans: make(map[string][]occurrencePlan),
		head:  q.Head,
	}
	an := eng.An
	fixedVars := fixed.Vars()
	// One maintenance plan per atom occurrence: the remaining conjunction
	// must be controlled by x̄ ∪ vars(atom), since the delta tuple supplies
	// the atom's variables (this is Q being x̄-scale-independent under
	// A(R), Proposition 5.5(1)).
	for i, a := range q.Atoms {
		rest := make([]query.Formula, 0, len(q.Atoms)-1)
		for j, b := range q.Atoms {
			if j != i {
				rest = append(rest, b)
			}
		}
		restBody := query.AndAll(rest...)
		res, err := an.Analyze(restBody)
		if err != nil {
			return nil, err
		}
		ctrl := fixedVars.Union(a.FreeVars())
		d := res.Controls(ctrl)
		if d == nil {
			return nil, fmt.Errorf("incr: %s is not incrementally scale-independent for updates to %s: remainder %s not %s-controlled",
				q.Name, a.Rel, restBody, ctrl)
		}
		m.plans[a.Rel] = append(m.plans[a.Rel], occurrencePlan{atom: a, rest: restBody, deriv: d})
	}
	// Deletion support (Proposition 5.5(2)): re-derivation of a candidate
	// answer requires the whole body controlled by x̄ ∪ head variables.
	full, err := an.Analyze(q.Formula())
	if err != nil {
		return nil, err
	}
	m.verify = full.Controls(fixedVars.Union(q.HeadVars()))

	// Offline precomputation of the initial answer.
	// Offline precomputation wants an uncounted read view. The single-node
	// store exposes its data in place; other backends (sharded) provide a
	// merged snapshot copy.
	var view *relation.Database
	if db, ok := eng.DB.(*store.DB); ok {
		view = db.Data()
	} else {
		view = eng.DB.CloneData()
	}
	ans, err := eval.AnswersCQ(eval.DBSource{DB: view}, q, fixed)
	if err != nil {
		return nil, err
	}
	m.answers = ans
	return m, nil
}

// Answers returns a snapshot of the maintained answer set (over the
// non-fixed head terms' values — the full head tuple with fixed variables
// included). The copy is the caller's to keep: mutating it cannot corrupt
// the maintainer's internal state, and it stays stable across later Apply
// calls. Use Len/Contains for O(1) probes that skip the copy.
func (m *CQMaintainer) Answers() *relation.TupleSet { return m.answers.Clone() }

// Len returns the current number of maintained answers.
func (m *CQMaintainer) Len() int { return m.answers.Len() }

// Contains reports whether t is currently an answer.
func (m *CQMaintainer) Contains(t relation.Tuple) bool { return m.answers.Contains(t) }

// SupportsDeletions reports whether deletion maintenance is available
// (Proposition 5.5(2)'s condition held at construction).
func (m *CQMaintainer) SupportsDeletions() bool { return m.verify != nil }

// Apply maintains the answers under u, applying u to the store. It returns
// the answer delta (ins disjoint from the old answers, del contained in
// them). Base accesses go through the counted store; the measured reads
// per update are bounded by the plans' static bounds times |ΔD|.
func (m *CQMaintainer) Apply(u *relation.Update) (ins, del []relation.Tuple, err error) {
	if !u.IsInsertOnly() && m.verify == nil {
		return nil, nil, fmt.Errorf("incr: %s supports insert-only updates (body not controlled by head variables)", m.q.Name)
	}
	// Deletion candidates are computed against the OLD database state.
	delCandidates := relation.NewTupleSet(0)
	for rel, ts := range u.Del {
		for _, plan := range m.plans[rel] {
			for _, t := range ts {
				c, err := m.deltaAnswers(plan, t)
				if err != nil {
					return nil, nil, err
				}
				delCandidates.AddAll(c.Tuples())
			}
		}
	}
	if err := m.eng.DB.ApplyUpdate(u); err != nil {
		return nil, nil, err
	}
	// Insertion candidates against the NEW state.
	insCandidates := relation.NewTupleSet(0)
	for rel, ts := range u.Ins {
		for _, plan := range m.plans[rel] {
			for _, t := range ts {
				c, err := m.deltaAnswers(plan, t)
				if err != nil {
					return nil, nil, err
				}
				insCandidates.AddAll(c.Tuples())
			}
		}
	}
	for _, t := range insCandidates.Tuples() {
		if !m.answers.Contains(t) {
			ins = append(ins, t)
			m.answers.Add(t)
		}
	}
	// A deletion candidate disappears only if no alternative derivation
	// survives: bounded re-verification with the full head fixed.
	for _, t := range delCandidates.Tuples() {
		if !m.answers.Contains(t) {
			continue
		}
		if insCandidates.Contains(t) {
			continue // re-derived via an insertion in the same update
		}
		still, err := m.rederive(t)
		if err != nil {
			return nil, nil, err
		}
		if !still {
			del = append(del, t)
			m.answers.Remove(t)
		}
	}
	return ins, del, nil
}

// deltaAnswers evaluates one maintenance plan for one delta tuple: unify
// the occurrence atom with the tuple, then boundedly evaluate the
// remainder.
func (m *CQMaintainer) deltaAnswers(plan occurrencePlan, t relation.Tuple) (*relation.TupleSet, error) {
	out := relation.NewTupleSet(0)
	chi, ok := unifyArgs(plan.atom.Args, t)
	if !ok {
		return out, nil
	}
	env := m.fixed.Clone()
	for k, v := range chi {
		if prev, has := env[k]; has && prev != v {
			return out, nil
		}
		env[k] = v
	}
	bs, err := core.Exec(m.eng.DB, plan.deriv, env)
	if err != nil {
		return nil, err
	}
	for _, b := range bs {
		tu := make(relation.Tuple, len(m.head))
		ok := true
		for i, h := range m.head {
			if !h.IsVar() {
				tu[i] = h.Value()
				continue
			}
			if v, has := b[h.Name()]; has {
				tu[i] = v
			} else if v, has := env[h.Name()]; has {
				tu[i] = v
			} else {
				ok = false
				break
			}
		}
		if ok {
			out.Add(tu)
		}
	}
	return out, nil
}

// rederive checks boundedly whether answer t is still derivable.
func (m *CQMaintainer) rederive(t relation.Tuple) (bool, error) {
	env := m.fixed.Clone()
	for i, h := range m.head {
		if !h.IsVar() {
			if h.Value() != t[i] {
				return false, nil
			}
			continue
		}
		if prev, has := env[h.Name()]; has && prev != t[i] {
			return false, nil
		}
		env[h.Name()] = t[i]
	}
	bs, err := core.Exec(m.eng.DB, m.verify, env)
	if err != nil {
		return false, err
	}
	return len(bs) > 0, nil
}

// unifyArgs matches atom arguments against a delta tuple, returning the
// variable bindings.
func unifyArgs(args []query.Term, t relation.Tuple) (query.Bindings, bool) {
	if len(args) != len(t) {
		return nil, false
	}
	b := make(query.Bindings, len(args))
	for i, a := range args {
		if !a.IsVar() {
			if a.Value() != t[i] {
				return nil, false
			}
			continue
		}
		if v, ok := b[a.Name()]; ok && v != t[i] {
			return nil, false
		}
		b[a.Name()] = t[i]
	}
	return b, true
}

// DecideDeltaQSI decides the ∆QSI question on a concrete instance: for
// every update in candidates (each of size ≤ k by the caller's choice),
// does some D_Q ⊆ D with |D_Q| ≤ M compute the exact answer delta? The
// maintenance semantics is the canonical one: ∆Q(∆D, D_Q) is the delta of
// Q between D_Q and D_Q ⊕ ∆D. Exponential in |D|; intended for the small
// instances of the Theorem 5.1/5.2 experiments.
func DecideDeltaQSI(q *query.Query, d *relation.Database, candidates []*relation.Update, m int, opt qdsi.Options) (bool, int64, error) {
	oldAnswers, err := eval.Answers(eval.DBSource{DB: d}, q, nil)
	if err != nil {
		return false, 0, err
	}
	var checks int64
	budget := opt.MaxChecks
	if budget <= 0 {
		budget = qdsi.DefaultMaxChecks
	}
	tuples := flatten(d)
	for _, u := range candidates {
		newDB, err := d.Applied(u)
		if err != nil {
			return false, checks, err
		}
		target, err := eval.Answers(eval.DBSource{DB: newDB}, q, nil)
		if err != nil {
			return false, checks, err
		}
		found := false
		size := m
		if size > len(tuples) {
			size = len(tuples)
		}
		for sz := 0; sz <= size && !found; sz++ {
			err := forEachSubset(len(tuples), sz, func(idx []int) (bool, error) {
				checks++
				if checks > budget {
					return false, qdsi.ErrBudget
				}
				dq := relation.NewDatabase(d.Schema())
				for _, i := range idx {
					dq.MustInsert(tuples[i].rel, tuples[i].t)
				}
				ok, err := deltaWitnesses(q, dq, u, oldAnswers, target)
				if err != nil {
					return false, err
				}
				if ok {
					found = true
					return false, nil
				}
				return true, nil
			})
			if err != nil {
				return false, checks, err
			}
		}
		if !found {
			return false, checks, nil
		}
	}
	return true, checks, nil
}

// deltaWitnesses checks whether the delta computed from (D_Q, ∆D) turns
// the old answers into the target answers.
func deltaWitnesses(q *query.Query, dq *relation.Database, u *relation.Update, oldAnswers, target *relation.TupleSet) (bool, error) {
	before, err := eval.Answers(eval.DBSource{DB: dq}, q, nil)
	if err != nil {
		return false, err
	}
	dqNew := dq.Clone()
	if err := applyLoose(dqNew, u); err != nil {
		return false, err
	}
	after, err := eval.Answers(eval.DBSource{DB: dqNew}, q, nil)
	if err != nil {
		return false, err
	}
	// ∆ = after − before, ∇ = before − after; apply to the old answers.
	result := oldAnswers.Clone()
	for _, t := range before.Tuples() {
		if !after.Contains(t) {
			result.Remove(t)
		}
	}
	for _, t := range after.Tuples() {
		if !before.Contains(t) {
			result.Add(t)
		}
	}
	return result.Equal(target), nil
}

// applyLoose applies an update ignoring deletions of absent tuples (D_Q
// may not contain them).
func applyLoose(db *relation.Database, u *relation.Update) error {
	for rel, ts := range u.Del {
		r := db.Rel(rel)
		if r == nil {
			return fmt.Errorf("incr: unknown relation %q", rel)
		}
		for _, t := range ts {
			r.Delete(t)
		}
	}
	for rel, ts := range u.Ins {
		r := db.Rel(rel)
		if r == nil {
			return fmt.Errorf("incr: unknown relation %q", rel)
		}
		for _, t := range ts {
			if !r.Contains(t) {
				if _, err := r.Insert(t); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

type taggedTuple struct {
	rel string
	t   relation.Tuple
}

func flatten(d *relation.Database) []taggedTuple {
	var out []taggedTuple
	for _, name := range d.Schema().Names() {
		for _, t := range d.Rel(name).Tuples() {
			out = append(out, taggedTuple{rel: name, t: t})
		}
	}
	return out
}

func forEachSubset(n, k int, yield func([]int) (bool, error)) error {
	idx := make([]int, k)
	var rec func(start, d int) (bool, error)
	rec = func(start, d int) (bool, error) {
		if d == k {
			return yield(idx)
		}
		for i := start; i <= n-(k-d); i++ {
			idx[d] = i
			cont, err := rec(i+1, d+1)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	_, err := rec(0, 0)
	return err
}

// SingleTupleUpdates enumerates candidate single-tuple updates: one
// insertion per tuple in pool (absent from D) and one deletion per present
// tuple.
func SingleTupleUpdates(d *relation.Database, pool map[string][]relation.Tuple) []*relation.Update {
	var out []*relation.Update
	for rel, ts := range pool {
		r := d.Rel(rel)
		if r == nil {
			continue
		}
		for _, t := range ts {
			if !r.Contains(t) {
				out = append(out, relation.NewUpdate().Insert(rel, t))
			}
		}
	}
	for _, name := range d.Schema().Names() {
		for _, t := range d.Rel(name).Tuples() {
			out = append(out, relation.NewUpdate().Delete(name, t))
		}
	}
	return out
}
