// Package incr implements incremental scale independence (Section 5 of the
// paper): answering Q on demand after updates ΔD by accessing a bounded
// number of base tuples, given the previously computed answer Q(D).
//
// Two layers are provided:
//
//   - CQMaintainer: the constructive side (Corollary 5.3, Proposition 5.5,
//     Example 5.6). The maintenance machinery itself — per-occurrence
//     remainder plans compiled through the physical plan IR, bounded
//     deletion re-verification, N-derived per-delta read bounds enforced
//     at runtime — lives in internal/core (core.Maintainer), where the
//     serving engine's Commit pipeline and the Live subscription API
//     (PreparedQuery.Watch) drive it; CQMaintainer is the standalone
//     wrapper keeping this package's historical full-head-tuple API.
//
//   - DecideDeltaQSI: the decision side (∆QSI, Theorems 5.1/5.2), a
//     definition-level decider for small instances: for every candidate
//     update, search for a witness D_Q ⊆ D of size ≤ M from which the
//     exact delta is computable.
package incr

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/qdsi"
	"repro/internal/query"
	"repro/internal/relation"
)

// CQMaintainer incrementally maintains Q(ā, D) for a conjunctive query
// with fixed values ā for a controlling set x̄ — a standalone wrapper over
// core.Maintainer that reports answers as full head tuples (fixed values
// included), the historical shape of this package.
//
// A CQMaintainer is NOT safe for concurrent use: Apply must not race
// Answers/Len/Contains readers. Concurrent serving wants the engine's
// subscription API instead — PreparedQuery.Watch returns a *core.Live
// handle whose internal locking serializes maintenance (driven by
// Engine.Commit) against Snapshot and Deltas readers.
type CQMaintainer struct {
	m *core.Maintainer
}

// NewCQMaintainer checks the conditions of Proposition 5.5 and compiles
// the maintenance plans through the engine's physical plan layer. The
// initial answer Q(ā, D) is computed by naive evaluation (the paper's
// offline precomputation step). Failure wraps core.ErrWatchNotMaintainable
// when the query is not incrementally scale-independent.
func NewCQMaintainer(eng *core.Engine, q *query.CQ, fixed query.Bindings) (*CQMaintainer, error) {
	m, err := core.NewMaintainer(eng, q, fixed)
	if err != nil {
		return nil, fmt.Errorf("incr: %w", err)
	}
	return &CQMaintainer{m: m}, nil
}

// Answers returns a snapshot of the maintained answer set as full head
// tuples (fixed variables included). The copy is the caller's to keep:
// mutating it cannot corrupt the maintainer's internal state, and it stays
// stable across later Apply calls. Use Len/Contains for O(1) probes that
// skip the copy.
func (c *CQMaintainer) Answers() *relation.TupleSet {
	rem := c.m.Answers()
	out := relation.NewTupleSet(rem.Len())
	for _, t := range rem.Tuples() {
		out.Add(c.m.Expand(t))
	}
	return out
}

// Len returns the current number of maintained answers.
func (c *CQMaintainer) Len() int { return c.m.Len() }

// Contains reports whether the full head tuple t is currently an answer:
// the fixed positions must carry ā and the remaining positions a
// maintained answer.
func (c *CQMaintainer) Contains(t relation.Tuple) bool {
	if len(t) != len(c.m.Head()) {
		return false
	}
	rem := c.m.Project(t)
	return c.m.Contains(rem) && c.m.Expand(rem).Equal(t)
}

// SupportsDeletions reports whether deletion maintenance is available
// (Proposition 5.5(2)'s condition held at construction).
func (c *CQMaintainer) SupportsDeletions() bool { return c.m.SupportsDeletions() }

// Apply maintains the answers under u, committing u through the engine's
// write pipeline (Engine.Commit: versioned apply, registered Live
// watchers notified, update volume tracked). It returns the answer delta
// as full head tuples (ins disjoint from the old answers, del contained
// in them). Base accesses go through the counted store; the measured
// reads per update are bounded by — and budgeted at — the compiled plans'
// static bounds times |ΔD| (core.Maintainer.DeltaBound).
func (c *CQMaintainer) Apply(u *relation.Update) (ins, del []relation.Tuple, err error) {
	ri, rd, _, err := c.m.Apply(context.Background(), u)
	if err != nil {
		return nil, nil, err
	}
	for _, t := range ri {
		ins = append(ins, c.m.Expand(t))
	}
	for _, t := range rd {
		del = append(del, c.m.Expand(t))
	}
	return ins, del, nil
}

// DecideDeltaQSI decides the ∆QSI question on a concrete instance: for
// every update in candidates (each of size ≤ k by the caller's choice),
// does some D_Q ⊆ D with |D_Q| ≤ M compute the exact answer delta? The
// maintenance semantics is the canonical one: ∆Q(∆D, D_Q) is the delta of
// Q between D_Q and D_Q ⊕ ∆D. Exponential in |D|; intended for the small
// instances of the Theorem 5.1/5.2 experiments.
func DecideDeltaQSI(q *query.Query, d *relation.Database, candidates []*relation.Update, m int, opt qdsi.Options) (bool, int64, error) {
	oldAnswers, err := eval.Answers(eval.DBSource{DB: d}, q, nil)
	if err != nil {
		return false, 0, err
	}
	var checks int64
	budget := opt.MaxChecks
	if budget <= 0 {
		budget = qdsi.DefaultMaxChecks
	}
	tuples := flatten(d)
	for _, u := range candidates {
		newDB, err := d.Applied(u)
		if err != nil {
			return false, checks, err
		}
		target, err := eval.Answers(eval.DBSource{DB: newDB}, q, nil)
		if err != nil {
			return false, checks, err
		}
		found := false
		size := m
		if size > len(tuples) {
			size = len(tuples)
		}
		for sz := 0; sz <= size && !found; sz++ {
			err := forEachSubset(len(tuples), sz, func(idx []int) (bool, error) {
				checks++
				if checks > budget {
					return false, qdsi.ErrBudget
				}
				dq := relation.NewDatabase(d.Schema())
				for _, i := range idx {
					dq.MustInsert(tuples[i].rel, tuples[i].t)
				}
				ok, err := deltaWitnesses(q, dq, u, oldAnswers, target)
				if err != nil {
					return false, err
				}
				if ok {
					found = true
					return false, nil
				}
				return true, nil
			})
			if err != nil {
				return false, checks, err
			}
		}
		if !found {
			return false, checks, nil
		}
	}
	return true, checks, nil
}

// deltaWitnesses checks whether the delta computed from (D_Q, ∆D) turns
// the old answers into the target answers.
func deltaWitnesses(q *query.Query, dq *relation.Database, u *relation.Update, oldAnswers, target *relation.TupleSet) (bool, error) {
	before, err := eval.Answers(eval.DBSource{DB: dq}, q, nil)
	if err != nil {
		return false, err
	}
	dqNew := dq.Clone()
	if err := applyLoose(dqNew, u); err != nil {
		return false, err
	}
	after, err := eval.Answers(eval.DBSource{DB: dqNew}, q, nil)
	if err != nil {
		return false, err
	}
	// ∆ = after − before, ∇ = before − after; apply to the old answers.
	result := oldAnswers.Clone()
	for _, t := range before.Tuples() {
		if !after.Contains(t) {
			result.Remove(t)
		}
	}
	for _, t := range after.Tuples() {
		if !before.Contains(t) {
			result.Add(t)
		}
	}
	return result.Equal(target), nil
}

// applyLoose applies an update ignoring deletions of absent tuples (D_Q
// may not contain them).
func applyLoose(db *relation.Database, u *relation.Update) error {
	for rel, ts := range u.Del {
		r := db.Rel(rel)
		if r == nil {
			return fmt.Errorf("incr: unknown relation %q", rel)
		}
		for _, t := range ts {
			r.Delete(t)
		}
	}
	for rel, ts := range u.Ins {
		r := db.Rel(rel)
		if r == nil {
			return fmt.Errorf("incr: unknown relation %q", rel)
		}
		for _, t := range ts {
			if !r.Contains(t) {
				if _, err := r.Insert(t); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

type taggedTuple struct {
	rel string
	t   relation.Tuple
}

func flatten(d *relation.Database) []taggedTuple {
	var out []taggedTuple
	for _, name := range d.Schema().Names() {
		for _, t := range d.Rel(name).Tuples() {
			out = append(out, taggedTuple{rel: name, t: t})
		}
	}
	return out
}

func forEachSubset(n, k int, yield func([]int) (bool, error)) error {
	idx := make([]int, k)
	var rec func(start, d int) (bool, error)
	rec = func(start, d int) (bool, error) {
		if d == k {
			return yield(idx)
		}
		for i := start; i <= n-(k-d); i++ {
			idx[d] = i
			cont, err := rec(i+1, d+1)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	_, err := rec(0, 0)
	return err
}

// SingleTupleUpdates enumerates candidate single-tuple updates: one
// insertion per tuple in pool (absent from D) and one deletion per present
// tuple.
func SingleTupleUpdates(d *relation.Database, pool map[string][]relation.Tuple) []*relation.Update {
	var out []*relation.Update
	for rel, ts := range pool {
		r := d.Rel(rel)
		if r == nil {
			continue
		}
		for _, t := range ts {
			if !r.Contains(t) {
				out = append(out, relation.NewUpdate().Insert(rel, t))
			}
		}
	}
	for _, name := range d.Schema().Names() {
		for _, t := range d.Rel(name).Tuples() {
			out = append(out, relation.NewUpdate().Delete(name, t))
		}
	}
	return out
}
