package incr

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/qdsi"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/store"
)

const q2Catalog = `
relation person(id, name, city)
relation friend(id1, id2)
relation restr(rid, name, city, rating)
relation visit(id, rid)

access friend(id1 -> *) limit 5000 time 1
access person(id -> *) limit 1 time 1
access restr(rid -> *) limit 1 time 1
access visit(id -> *) limit 100 time 1
`

func buildQ2DB(t testing.TB, cat *parser.Catalog, nPersons, nRestr int, seed int64) *store.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := relation.NewDatabase(cat.Relational)
	cities := []string{"NYC", "LA"}
	for i := 0; i < nPersons; i++ {
		db.MustInsert("person", relation.NewTuple(
			relation.Int(int64(i)), relation.Str(fmt.Sprintf("p%d", i)), relation.Str(cities[i%2])))
		for j := 0; j < 3; j++ {
			db.Insert("friend", relation.Ints(int64(i), int64(rng.Intn(nPersons)))) //nolint:errcheck
		}
	}
	for r := 0; r < nRestr; r++ {
		db.MustInsert("restr", relation.NewTuple(
			relation.Int(int64(1000+r)), relation.Str(fmt.Sprintf("r%d", r)),
			relation.Str(cities[r%2]), relation.Str([]string{"A", "B"}[r%2])))
	}
	for i := 0; i < nPersons; i++ {
		for v := 0; v < 2; v++ {
			db.Insert("visit", relation.Ints(int64(i), int64(1000+rng.Intn(nRestr)))) //nolint:errcheck
		}
	}
	return store.MustOpen(db, cat.Access)
}

// q2 is Example 1.1(b): restaurants rated A in NYC visited by p's NYC
// friends.
func q2(t *testing.T) *query.CQ {
	t.Helper()
	cq, err := parser.ParseCQ("Q2(p, rn) :- friend(p, id), visit(id, rid), person(id, pn, 'NYC'), restr(rid, rn, 'NYC', 'A')")
	if err != nil {
		t.Fatal(err)
	}
	return cq
}

func mustCat(t testing.TB, src string) *parser.Catalog {
	t.Helper()
	cat, err := parser.ParseCatalog(src)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestCQMaintainerQ2Insertions(t *testing.T) {
	cat := mustCat(t, q2Catalog)
	st := buildQ2DB(t, cat, 30, 8, 1)
	eng := core.NewEngine(st)
	fixed := query.Bindings{"p": relation.Int(3)}
	m, err := NewCQMaintainer(eng, q2(t), fixed)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: recompute naive answers after each update.
	for step := 0; step < 15; step++ {
		// Insert a visit by a friend-of-3 or a random person.
		u := relation.NewUpdate()
		id := int64(step % 30)
		rid := int64(1000 + step%8)
		if !st.Data().Rel("visit").Contains(relation.Ints(id, rid)) {
			u.Insert("visit", relation.Ints(id, rid))
		} else {
			continue
		}
		ins, del, err := m.Apply(u)
		if err != nil {
			t.Fatal(err)
		}
		if len(del) != 0 {
			t.Fatalf("insert-only update produced deletions: %v", del)
		}
		want, err := eval.AnswersCQ(eval.DBSource{DB: st.Data()}, q2(t), fixed)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Answers().Equal(want) {
			t.Fatalf("step %d: maintained %v vs recomputed %v (ins %v)",
				step, m.Answers().Tuples(), want.Tuples(), ins)
		}
	}
}

func TestCQMaintainerDeletions(t *testing.T) {
	cat := mustCat(t, q2Catalog)
	st := buildQ2DB(t, cat, 20, 6, 2)
	eng := core.NewEngine(st)
	fixed := query.Bindings{"p": relation.Int(1)}
	m, err := NewCQMaintainer(eng, q2(t), fixed)
	if err != nil {
		t.Fatal(err)
	}
	if !m.SupportsDeletions() {
		t.Fatal("Q2 with p and rn fixed should be re-derivable (supports deletions)")
	}
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 25; step++ {
		u := relation.NewUpdate()
		visits := st.Data().Rel("visit").Tuples()
		if len(visits) == 0 {
			break
		}
		victim := visits[rng.Intn(len(visits))]
		u.Delete("visit", victim)
		if _, _, err := m.Apply(u); err != nil {
			t.Fatal(err)
		}
		want, err := eval.AnswersCQ(eval.DBSource{DB: st.Data()}, q2(t), fixed)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Answers().Equal(want) {
			t.Fatalf("step %d after deleting %v: maintained %v vs %v",
				step, victim, m.Answers().Tuples(), want.Tuples())
		}
	}
}

// Mixed random updates across all relations must stay exact.
func TestCQMaintainerMixedQuick(t *testing.T) {
	cat := mustCat(t, q2Catalog)
	st := buildQ2DB(t, cat, 15, 5, 3)
	eng := core.NewEngine(st)
	fixed := query.Bindings{"p": relation.Int(2)}
	m, err := NewCQMaintainer(eng, q2(t), fixed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 40; step++ {
		u := relation.NewUpdate()
		switch rng.Intn(4) {
		case 0:
			tu := relation.Ints(int64(rng.Intn(15)), int64(1000+rng.Intn(5)))
			if !st.Data().Rel("visit").Contains(tu) {
				u.Insert("visit", tu)
			}
		case 1:
			vs := st.Data().Rel("visit").Tuples()
			if len(vs) > 0 {
				u.Delete("visit", vs[rng.Intn(len(vs))])
			}
		case 2:
			tu := relation.Ints(2, int64(rng.Intn(15)))
			if !st.Data().Rel("friend").Contains(tu) {
				u.Insert("friend", tu)
			}
		case 3:
			fs := st.Data().Rel("friend").Tuples()
			if len(fs) > 0 {
				u.Delete("friend", fs[rng.Intn(len(fs))])
			}
		}
		if u.Size() == 0 {
			continue
		}
		if _, _, err := m.Apply(u); err != nil {
			t.Fatal(err)
		}
		want, err := eval.AnswersCQ(eval.DBSource{DB: st.Data()}, q2(t), fixed)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Answers().Equal(want) {
			t.Fatalf("step %d: divergence", step)
		}
	}
}

// The headline measurement of Example 1.1(b): maintenance cost per update
// is bounded (≈ 3 fetches per inserted visit tuple) regardless of |D|.
func TestCQMaintainerBoundedReads(t *testing.T) {
	cat := mustCat(t, q2Catalog)
	var reads []int64
	for _, n := range []int{30, 120, 480} {
		st := buildQ2DB(t, cat, n, 8, 7)
		eng := core.NewEngine(st)
		m, err := NewCQMaintainer(eng, q2(t), query.Bindings{"p": relation.Int(3)})
		if err != nil {
			t.Fatal(err)
		}
		st.ResetCounters()
		u := relation.NewUpdate().Insert("visit", relation.Ints(3, 1001))
		if st.Data().Rel("visit").Contains(relation.Ints(3, 1001)) {
			u = relation.NewUpdate().Insert("visit", relation.Ints(3, 1003))
		}
		if _, _, err := m.Apply(u); err != nil {
			t.Fatal(err)
		}
		c := st.Counters()
		if c.Scans != 0 {
			t.Fatalf("n=%d: maintenance scanned", n)
		}
		reads = append(reads, c.TupleReads+c.Memberships)
	}
	for i := 1; i < len(reads); i++ {
		if reads[i] > reads[0]+8 {
			t.Errorf("reads grew with |D|: %v", reads)
		}
	}
}

func TestCQMaintainerRejectsUncontrolled(t *testing.T) {
	// Without the visit(id) access entry, the remainder after a friend
	// insertion is not controlled: construction must fail.
	cat := mustCat(t, `
relation person(id, name, city)
relation friend(id1, id2)
relation restr(rid, name, city, rating)
relation visit(id, rid)
access friend(id1 -> *) limit 5000 time 1
`)
	st := buildQ2DB(t, cat, 10, 4, 9)
	eng := core.NewEngine(st)
	if _, err := NewCQMaintainer(eng, q2(t), query.Bindings{"p": relation.Int(1)}); err == nil {
		t.Fatal("construction should fail without access entries")
	}
}

func TestDecideDeltaQSISmall(t *testing.T) {
	s := relation.MustSchema(relation.MustRelSchema("R", "a", "b"))
	d := relation.NewDatabase(s)
	d.MustInsert("R", relation.Ints(1, 1))
	d.MustInsert("R", relation.Ints(2, 2))
	q, err := parser.ParseQuery("Q(x) := exists y (R(x, y))")
	if err != nil {
		t.Fatal(err)
	}
	pool := map[string][]relation.Tuple{"R": {relation.Ints(1, 5), relation.Ints(3, 3)}}
	updates := SingleTupleUpdates(d, pool)
	if len(updates) != 4 { // 2 insertions + 2 deletions
		t.Fatalf("updates = %d", len(updates))
	}
	// With M = |D| the delta is always computable (use all of D).
	ok, _, err := DecideDeltaQSI(q, d, updates, d.Size(), qdsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("M=|D| must suffice")
	}
	// With M = 0: an insertion R(1,5) requires knowing whether x=1 was
	// already an answer — the empty D_Q claims ∆ = {1}, but 1 ∈ Q(D), so
	// the delta would wrongly re-add it... set semantics absorbs that.
	// Deletion of R(1,1) is the crux: with D_Q = ∅ the delta is empty,
	// but Q changes (answer 1 disappears). So M=0 must fail.
	ok, _, err = DecideDeltaQSI(q, d, updates, 0, qdsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("M=0 must fail for deletions")
	}
}

// Insert-only workloads: the delta of a monotone query needs only the
// witness tuples for genuinely new answers.
func TestDecideDeltaQSIInsertOnly(t *testing.T) {
	s := relation.MustSchema(
		relation.MustRelSchema("R", "a", "b"),
		relation.MustRelSchema("S", "b"),
	)
	d := relation.NewDatabase(s)
	d.MustInsert("R", relation.Ints(1, 10))
	d.MustInsert("S", relation.Ints(10))
	d.MustInsert("S", relation.Ints(20))
	q, err := parser.ParseQuery("Q(x) := exists y (R(x, y) and S(y))")
	if err != nil {
		t.Fatal(err)
	}
	// Insertion R(2, 20): the new answer 2 needs S(20) from D: M=1 works.
	updates := []*relation.Update{relation.NewUpdate().Insert("R", relation.Ints(2, 20))}
	ok, _, err := DecideDeltaQSI(q, d, updates, 1, qdsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("M=1 should suffice: fetch S(20)")
	}
	ok, _, err = DecideDeltaQSI(q, d, updates, 0, qdsi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("M=0 should fail: S(20) must be read")
	}
}

func TestDecideDeltaQSIBudget(t *testing.T) {
	// The full-input cycle query of Proposition 3.6: after deleting one
	// edge the delta is computable only from a D_Q containing the whole
	// cycle, so with M below |D| every subset fails and the enumeration
	// exhausts a small budget.
	s := relation.MustSchema(relation.MustRelSchema("R", "a", "b"))
	d := relation.NewDatabase(s)
	n := int64(10)
	for i := int64(0); i < n; i++ {
		d.MustInsert("R", relation.Ints(i, (i+1)%n))
	}
	q, err := parser.ParseQuery("Q() := (exists x, y (R(x, y))) and (forall x, y (R(x, y) implies exists z (R(y, z))))")
	if err != nil {
		t.Fatal(err)
	}
	updates := []*relation.Update{relation.NewUpdate().Delete("R", relation.Ints(0, 1))}
	_, _, err = DecideDeltaQSI(q, d, updates, 5, qdsi.Options{MaxChecks: 25})
	if err == nil {
		t.Fatal("expected budget exhaustion")
	}
}

// TestAnswersSnapshotIsolated: the set Answers hands out is the caller's
// copy — mutating it must not corrupt the maintainer, and it must stay
// stable while later updates move the maintained set on.
func TestAnswersSnapshotIsolated(t *testing.T) {
	cat := mustCat(t, q2Catalog)
	st := buildQ2DB(t, cat, 30, 8, 4)
	eng := core.NewEngine(st)
	fixed := query.Bindings{"p": relation.Int(3)}
	m, err := NewCQMaintainer(eng, q2(t), fixed)
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Answers()
	before := snap.Len()

	// Vandalize the snapshot: drain it and add a bogus tuple.
	for _, tu := range append([]relation.Tuple(nil), snap.Tuples()...) {
		snap.Remove(tu)
	}
	snap.Add(relation.Ints(-1, -1))
	if m.Len() != before {
		t.Fatalf("mutating the snapshot changed the maintainer: %d answers, want %d", m.Len(), before)
	}
	if m.Contains(relation.Ints(-1, -1)) {
		t.Fatal("bogus tuple leaked into the maintainer")
	}

	// Maintenance must still agree with recomputation after the vandalism.
	u := relation.NewUpdate()
	u.Insert("visit", relation.Ints(3, 1001))
	if st.Data().Rel("visit").Contains(relation.Ints(3, 1001)) {
		u = relation.NewUpdate()
		u.Insert("visit", relation.Ints(3, 1003))
	}
	if _, _, err := m.Apply(u); err != nil {
		t.Fatal(err)
	}
	want, err := eval.AnswersCQ(eval.DBSource{DB: st.Data()}, q2(t), fixed)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Answers().Equal(want) {
		t.Fatalf("after update: maintained %v vs recomputed %v", m.Answers().Tuples(), want.Tuples())
	}

	// An earlier snapshot is frozen: it must not see the update. The id is
	// far outside the generated range, so the tuple is guaranteed absent
	// and the assertion always runs.
	snap2 := m.Answers()
	u2 := relation.NewUpdate()
	u2.Insert("visit", relation.Ints(999_999, 1005))
	if _, _, err := m.Apply(u2); err != nil {
		t.Fatal(err)
	}
	if snap2.Len() != want.Len() {
		t.Fatalf("snapshot moved with the maintainer: %d, want %d", snap2.Len(), want.Len())
	}
}

// TestContainsChecksFixedPositions: Contains takes a FULL head tuple —
// the fixed positions must carry ā, not just any value whose remaining
// projection happens to be an answer.
func TestContainsChecksFixedPositions(t *testing.T) {
	cat := mustCat(t, q2Catalog)
	st := buildQ2DB(t, cat, 30, 8, 6)
	eng := core.NewEngine(st)
	fixed := query.Bindings{"p": relation.Int(3)}
	m, err := NewCQMaintainer(eng, q2(t), fixed)
	if err != nil {
		t.Fatal(err)
	}
	ans := m.Answers().Tuples()
	if len(ans) == 0 {
		t.Skip("p=3 has no answers under this seed; widen the data")
	}
	good := ans[0]
	if !m.Contains(good) {
		t.Fatalf("Contains(%v) = false for a reported answer", good)
	}
	bad := append(relation.Tuple(nil), good...)
	bad[0] = relation.Int(999_999) // wrong fixed p, same rn
	if m.Contains(bad) {
		t.Fatalf("Contains(%v) = true despite a fixed-position mismatch", bad)
	}
	if m.Contains(good[:1]) {
		t.Fatal("Contains accepted a tuple of the wrong arity")
	}
}
