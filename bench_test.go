package scaleindep

// Benchmarks regenerating every table/figure of the reproduction (see
// DESIGN.md §9 for the experiment index). Each benchmark wraps one
// experiment of internal/bench in quick mode, plus fine-grained benches
// for the core engine paths and the prepared-query serving API. Run:
//
//	go test -bench=. -benchmem
//
// cmd/sibench prints the full paper-style tables; `sibench -serving`
// prints the serving comparison as a table.

import (
	"context"
	"math"
	"os"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/incr"
	"repro/internal/obs"
	"repro/internal/qdsi"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/workload"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for _, e := range bench.All() {
		if e.ID != id {
			continue
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(true); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.Fatalf("unknown experiment %q", id)
}

// BenchmarkTable1 regenerates the Table 1 validation tables (QDSI
// complexity cells).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "T1") }

// BenchmarkF1a_BoundedVsNaive regenerates Example 1.1(a): Q1 bounded vs
// naive scaling.
func BenchmarkF1a_BoundedVsNaive(b *testing.B) { runExperiment(b, "F1a") }

// BenchmarkF1b_Incremental regenerates Example 1.1(b): incremental Q2.
func BenchmarkF1b_Incremental(b *testing.B) { runExperiment(b, "F1b") }

// BenchmarkF1c_Views regenerates Example 1.1(c): Q2 via views.
func BenchmarkF1c_Views(b *testing.B) { runExperiment(b, "F1c") }

// BenchmarkX44_QCntl regenerates the Theorem 4.4 experiment.
func BenchmarkX44_QCntl(b *testing.B) { runExperiment(b, "X4.4") }

// BenchmarkX45_Embedded regenerates the Proposition 4.5 / Example 4.6
// experiment.
func BenchmarkX45_Embedded(b *testing.B) { runExperiment(b, "X4.5") }

// BenchmarkX54_RAA regenerates the Theorem 5.4 experiment.
func BenchmarkX54_RAA(b *testing.B) { runExperiment(b, "X5.4") }

// BenchmarkX61_VQSI regenerates the Theorem 6.1 experiment.
func BenchmarkX61_VQSI(b *testing.B) { runExperiment(b, "X6.1") }

// BenchmarkXGLT_Deltas regenerates the GLT maintenance substrate
// experiment.
func BenchmarkXGLT_Deltas(b *testing.B) { runExperiment(b, "XGLT") }

// --- Fine-grained engine benchmarks (X-4.2: Theorem 4.2 hot paths). ---

func socialEngine(b *testing.B, persons int) (*core.Engine, *store.DB) {
	b.Helper()
	cfg := workload.DefaultConfig()
	cfg.Persons = persons
	cfg.Seed = 7
	db, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	st, err := store.Open(db, workload.Access(cfg))
	if err != nil {
		b.Fatal(err)
	}
	return core.NewEngine(st), st
}

// BenchmarkX42_BoundedEval measures one bounded evaluation of Q1 (Theorem
// 4.2's executable side) on a 10k-person graph.
func BenchmarkX42_BoundedEval(b *testing.B) {
	eng, _ := socialEngine(b, 10000)
	q, err := ParseQuery(workload.Q1Src)
	if err != nil {
		b.Fatal(err)
	}
	d, err := eng.Controllable(q, NewVarSet("p"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.AnswerWith(q, Bindings{"p": Int(int64(i % 1000))}, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkX42_NaiveEval is the unbounded baseline for the same query.
func BenchmarkX42_NaiveEval(b *testing.B) {
	_, st := socialEngine(b, 10000)
	q, err := ParseQuery(workload.Q1Src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Answers(eval.DBSource{DB: st.Data()}, q, Bindings{"p": Int(int64(i % 1000))}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllabilityAnalysis measures the analyzer on Q3 with
// embedded entries (the chase path).
func BenchmarkControllabilityAnalysis(b *testing.B) {
	eng, _ := socialEngine(b, 100)
	q, err := ParseQuery(workload.Q3Src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.An.AnalyzeQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalMaintenance measures one maintained visit insertion
// for Q2 on a 10k-person graph.
func BenchmarkIncrementalMaintenance(b *testing.B) {
	eng, st := socialEngine(b, 10000)
	q2, err := ParseCQ(workload.Q2Src)
	if err != nil {
		b.Fatal(err)
	}
	m, err := incr.NewCQMaintainer(eng, q2, Bindings{"p": Int(7)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := relation.NewTuple(Int(int64(i%10000)), Int(1_000_000), Int(2013), Int(int64(1+i%12)), Int(29))
		u := relation.NewUpdate()
		if st.Data().Rel("visit").Contains(t) {
			u.Delete("visit", t)
		} else {
			u.Insert("visit", t)
		}
		if _, _, err := m.Apply(u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQDSISetCover measures the exact QDSI decider on a star graph.
func BenchmarkQDSISetCover(b *testing.B) {
	q, err := ParseCQ("Q(x, y) :- R(x, z), R(z, y)")
	if err != nil {
		b.Fatal(err)
	}
	s := relation.MustSchema(relation.MustRelSchema("R", "a", "b"))
	d := relation.NewDatabase(s)
	for i := 0; i < 10; i++ {
		d.MustInsert("R", relation.Ints(int64(1+i), 0))
		d.MustInsert("R", relation.Ints(0, int64(100+i)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qdsi.DecideCQ(q, d, d.Size(), qdsi.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serving API benchmarks: prepared vs unprepared repeated answering
// of the same workload query. The gap between Unprepared and the other
// two is the per-call controllability analysis the prepared lifecycle
// amortizes away. ---

// BenchmarkServingUnprepared re-runs the analysis on every call (plan
// cache disabled): the pre-redesign Answer behavior.
func BenchmarkServingUnprepared(b *testing.B) {
	eng, _ := socialEngine(b, 10000)
	eng.SetPlanCacheSize(0)
	q, err := ParseQuery(workload.Q1Src)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.AnswerContext(ctx, q, Bindings{"p": Int(int64(i % 1000))}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServingPlanCache uses the one-shot Answer path, which hits the
// engine's LRU plan cache transparently.
func BenchmarkServingPlanCache(b *testing.B) {
	eng, _ := socialEngine(b, 10000)
	q, err := ParseQuery(workload.Q1Src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Answer(q, Bindings{"p": Int(int64(i % 1000))}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServingPrepared executes an explicitly prepared query.
func BenchmarkServingPrepared(b *testing.B) {
	eng, _ := socialEngine(b, 10000)
	q, err := ParseQuery(workload.Q1Src)
	if err != nil {
		b.Fatal(err)
	}
	prep, err := eng.Prepare(q, NewVarSet("p"))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prep.Exec(ctx, Bindings{"p": Int(int64(i % 1000))}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServingPreparedNoTrace is the hot path: prepared execution
// with witness bookkeeping disabled.
func BenchmarkServingPreparedNoTrace(b *testing.B) {
	eng, _ := socialEngine(b, 10000)
	q, err := ParseQuery(workload.Q1Src)
	if err != nil {
		b.Fatal(err)
	}
	prep, err := eng.Prepare(q, NewVarSet("p"))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prep.Exec(ctx, Bindings{"p": Int(int64(i % 1000))}, WithoutTrace()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServingPreparedExec compares the prepared serving hot path
// under the three instrumentation states:
//
//	bare      no telemetry installed (a library embedder's default)
//	traced    engine telemetry on — QueryEvent per execution into a live
//	          metrics observer, as siserve runs in production
//	analyzed  EXPLAIN ANALYZE mode — per-operator counters and wall
//	          clocks (opt-in diagnostics, not on the serving path)
//
// The bare→traced delta is the default-on instrumentation cost, budgeted
// at ≤5% and CI-gated by TestInstrumentationOverheadGate (`make
// overhead-gate`). The traced→analyzed delta is what a diagnostic run
// pays; it has no budget.
func BenchmarkServingPreparedExec(b *testing.B) {
	b.Run("bare", func(b *testing.B) { benchPreparedExec(b, false, false) })
	b.Run("traced", func(b *testing.B) { benchPreparedExec(b, true, false) })
	b.Run("analyzed", func(b *testing.B) { benchPreparedExec(b, true, true) })
}

// benchObserver is a production-shaped telemetry sink: per-query latency
// and reads histograms, as the serving tier's /metricsz observer records.
type benchObserver struct {
	lat, reads *obs.Histogram
}

func (o *benchObserver) ObserveQuery(ev core.QueryEvent) {
	o.lat.ObserveDuration(ev.Wall)
	o.reads.Observe(float64(ev.Cost.TupleReads))
}
func (o *benchObserver) ObserveCommit(core.CommitEvent) {}

func benchPreparedExec(b *testing.B, telemetry, analyze bool) {
	eng, _ := socialEngine(b, 10000)
	if telemetry {
		reg := obs.NewRegistry()
		eng.SetTelemetry(core.TelemetryConfig{Observer: &benchObserver{
			lat:   reg.Histogram("bench_query_latency_seconds", "bench").With(),
			reads: reg.Histogram("bench_query_reads", "bench").With(),
		}})
	}
	q, err := ParseQuery(workload.Q1Src)
	if err != nil {
		b.Fatal(err)
	}
	prep, err := eng.Prepare(q, NewVarSet("p"))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	opts := []ExecOption{WithoutTrace()}
	if analyze {
		opts = append(opts, WithAnalyze())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := prep.Query(ctx, Bindings{"p": Int(int64(i % 1000))}, opts...)
		if err != nil {
			b.Fatal(err)
		}
		for rows.Next() {
		}
		if err := rows.Err(); err != nil {
			b.Fatal(err)
		}
		rows.Close()
	}
}

// TestInstrumentationOverheadGate is the CI overhead budget (set
// SI_OVERHEAD_GATE to run; `make overhead-gate`): default-on telemetry —
// the QueryEvent per execution siserve records into its metrics registry
// — must cost at most 5% wall time over the bare prepared hot path. Both
// lanes run back to back in-process, best of three rounds each, so
// scheduler noise fails slow, not spuriously.
func TestInstrumentationOverheadGate(t *testing.T) {
	if os.Getenv("SI_OVERHEAD_GATE") == "" {
		t.Skip("set SI_OVERHEAD_GATE=1 to run the instrumentation overhead gate")
	}
	best := func(telemetry bool) float64 {
		ns := math.MaxFloat64
		for round := 0; round < 3; round++ {
			r := testing.Benchmark(func(b *testing.B) { benchPreparedExec(b, telemetry, false) })
			if v := float64(r.T.Nanoseconds()) / float64(r.N); v < ns {
				ns = v
			}
		}
		return ns
	}
	bare := best(false)
	traced := best(true)
	overhead := traced/bare - 1
	t.Logf("bare %.0f ns/op, traced %.0f ns/op, overhead %+.2f%%", bare, traced, 100*overhead)
	if overhead > 0.05 {
		t.Fatalf("default-on instrumentation overhead %.2f%% exceeds the 5%% budget", 100*overhead)
	}
}

// BenchmarkServingPreparedSharded4 is the prepared hot path over the
// 4-shard backend: Q1's fetches all route (friend by id1, person by id),
// so the delta against BenchmarkServingPreparedNoTrace is the pure
// routing overhead of the sharded backend on single-shard fast paths.
func BenchmarkServingPreparedSharded4(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.Persons = 10000
	cfg.Seed = 7
	db, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := NewShardedEngine(db, workload.Access(cfg), 4)
	if err != nil {
		b.Fatal(err)
	}
	q, err := ParseQuery(workload.Q1Src)
	if err != nil {
		b.Fatal(err)
	}
	prep, err := eng.Prepare(q, NewVarSet("p"))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prep.Exec(ctx, Bindings{"p": Int(int64(i % 1000))}, WithoutTrace()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Cursor (streaming) serving benchmarks: the same prepared Q1 through
// the Rows API. Drain shows the cursor protocol's overhead against Exec;
// First shows what early termination buys — strictly fewer tuple reads
// per call, since the fetches behind unread answers are never issued. ---

// BenchmarkServingRowsDrain fully drains a cursor per call: same reads
// and answers as BenchmarkServingPreparedNoTrace, through Next/Tuple.
func BenchmarkServingRowsDrain(b *testing.B) {
	eng, _ := socialEngine(b, 10000)
	q, err := ParseQuery(workload.Q1Src)
	if err != nil {
		b.Fatal(err)
	}
	prep, err := eng.Prepare(q, NewVarSet("p"))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := prep.Query(ctx, Bindings{"p": Int(int64(i % 1000))}, WithoutTrace())
		if err != nil {
			b.Fatal(err)
		}
		for rows.Next() {
		}
		if err := rows.Err(); err != nil {
			b.Fatal(err)
		}
		rows.Close()
	}
}

// BenchmarkServingFirst stops after the first answer; the read savings
// against the full drain are reported as reads/op.
func BenchmarkServingFirst(b *testing.B) {
	eng, _ := socialEngine(b, 10000)
	q, err := ParseQuery(workload.Q1Src)
	if err != nil {
		b.Fatal(err)
	}
	prep, err := eng.Prepare(q, NewVarSet("p"))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var reads int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := prep.Query(ctx, Bindings{"p": Int(int64(i % 1000))}, WithoutTrace(), WithLimit(1))
		if err != nil {
			b.Fatal(err)
		}
		rows.Next()
		if err := rows.Err(); err != nil {
			b.Fatal(err)
		}
		reads += rows.Cost().TupleReads
		rows.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(reads)/float64(b.N), "reads/op")
}

// BenchmarkServingExecReads is BenchmarkServingPreparedNoTrace with the
// full drain's reads/op reported, for comparison against
// BenchmarkServingFirst: the delta is the early-exit saving.
func BenchmarkServingExecReads(b *testing.B) {
	eng, _ := socialEngine(b, 10000)
	q, err := ParseQuery(workload.Q1Src)
	if err != nil {
		b.Fatal(err)
	}
	prep, err := eng.Prepare(q, NewVarSet("p"))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var reads int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := prep.Exec(ctx, Bindings{"p": Int(int64(i % 1000))}, WithoutTrace())
		if err != nil {
			b.Fatal(err)
		}
		reads += ans.Cost.TupleReads
	}
	b.StopTimer()
	b.ReportMetric(float64(reads)/float64(b.N), "reads/op")
}

// TestFacadeStreaming drives the cursor API end to end through the public
// facade: Rows.All() answers match Exec, and early exit reads less.
func TestFacadeStreaming(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Persons = 300
	db, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(db, workload.Access(cfg))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(workload.Q1Src)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := eng.Prepare(q, NewVarSet("p"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for p := int64(0); p < 60; p++ {
		fixed := Bindings{"p": Int(p)}
		ans, err := prep.Exec(ctx, fixed)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := prep.Query(ctx, fixed)
		if err != nil {
			t.Fatal(err)
		}
		got := relation.NewTupleSet(0)
		for tu, err := range rows.All() {
			if err != nil {
				t.Fatal(err)
			}
			got.Add(tu)
		}
		if !got.Equal(ans.Tuples) {
			t.Fatalf("p=%d: streamed %v, exec %v", p, got.Tuples(), ans.Tuples.Tuples())
		}
		if rows.Cost().TupleReads != ans.Cost.TupleReads {
			t.Fatalf("p=%d: rows read %d, exec %d", p, rows.Cost().TupleReads, ans.Cost.TupleReads)
		}
		if ans.Tuples.Len() < 2 {
			continue
		}
		first, err := eng.First(ctx, q, fixed)
		if err != nil {
			t.Fatal(err)
		}
		if !ans.Tuples.Contains(first) {
			t.Fatalf("p=%d: First %v not an answer", p, first)
		}
		return
	}
	t.Fatal("no multi-answer binding found")
}

// Facade smoke test: the public API answers Q1 correctly end to end.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Persons = 300
	db, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(db, workload.Access(cfg))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(workload.Q1Src)
	if err != nil {
		t.Fatal(err)
	}
	fixed := Bindings{"p": Int(11)}
	ans, err := eng.Answer(q, fixed)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveAnswers(db, q, fixed)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Tuples.Equal(naive) {
		t.Fatalf("facade answers differ: %v vs %v", ans.Tuples.Tuples(), naive.Tuples())
	}
	if _, err := Controllable(eng, q, NewVarSet("p")); err != nil {
		t.Fatal(err)
	}
	_ = query.Bindings(nil) // keep import grouping honest
}

// BenchmarkCommitDelete measures the write path's |D|-sensitivity
// directly: each op is one commit deleting a 24-tuple friend batch plus
// the commit restoring it, on the mixed-workload instance at |D| ≈ 30k
// and |D| ≈ 150k. With O(1) swap-remove deletion ns/op and allocs/op
// must stay near-constant across the two sizes; the pre-swap-remove
// engine paid an O(|R|) copy and re-key of the relation per deleted
// tuple, which made this benchmark 5x at the larger instance.
func BenchmarkCommitDelete(b *testing.B) {
	for _, sc := range []struct {
		name    string
		persons int
	}{{"D30k", 2000}, {"D150k", 10000}} {
		b.Run(sc.name, func(b *testing.B) {
			cfg := workload.DefaultConfig()
			cfg.Persons = sc.persons
			cfg.Seed = 7
			data, err := workload.Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			batch := append([]relation.Tuple(nil), data.Rel("friend").Tuples()[:24]...)
			eng, err := NewEngine(data, workload.Access(cfg))
			if err != nil {
				b.Fatal(err)
			}
			del := NewUpdate()
			for _, tu := range batch {
				del.Delete("friend", tu)
			}
			ins := del.Inverse()
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Commit(ctx, del); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Commit(ctx, ins); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
