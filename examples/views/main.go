// Views: Example 1.1(c) / Section 6. Q2 is rewritten over the materialized
// views V1 (NYC restaurants) and V2 (visits by NYC residents); the
// rewriting answers Q2 by reading only the friend tuples of p₀ from the
// base data (Corollary 6.2). The VQSI decision procedure of Theorem 6.1 is
// also demonstrated: without fixing p, Q2 is *not* scale-independent using
// the views, because rn stays unconstrained.
//
// Run: go run ./examples/views
package main

import (
	"context"
	"fmt"
	"log"

	scaleindep "repro"
	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/views"
	"repro/internal/workload"
)

func main() {
	q2, err := scaleindep.ParseCQ(workload.Q2Src)
	if err != nil {
		log.Fatal(err)
	}
	v1 := mustView("V1(rid, rn, rating) :- restr(rid, rn, 'NYC', rating)")
	v2 := mustView("V2(id, rid) :- visit(id, rid, yy, mm, dd), person(id, pn, 'NYC')")
	vs := []*views.View{v1, v2}

	// Rewriting search.
	rws, err := views.FindRewritings(q2, vs, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d equivalent rewritings of Q2 using V1, V2\n", len(rws))
	var rw *views.Rewriting
	for _, r := range rws {
		if r.BaseSize() == 1 && len(r.ViewAtoms) == 2 {
			rw = r
		}
	}
	if rw == nil {
		log.Fatal("paper rewriting not found")
	}
	fmt.Printf("the paper's Q2': %s\n", rw)
	fmt.Printf("unconstrained distinguished variables: %s\n\n", rw.UnconstrainedVars())

	// VQSI (Theorem 6.1): not scale-independent using views for any small
	// M without fixing p — rn is unconstrained.
	dec, err := views.DecideVQSI(q2, vs, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VQSI(Q2, {V1,V2}, M=2): %v (%s)\n\n", dec.InVSQ, dec.Reason)

	// Corollary 6.2(2): with p fixed, the base part friend(p, id) is
	// p-controlled, so Q2 is {p, rn}-scale-independent using the views.
	fmt.Println("Q2(p₀) via the rewriting, measured:")
	fmt.Printf("%-10s %-10s %-12s %-12s %-8s\n", "persons", "|D|", "base reads", "view reads", "match")
	for _, n := range []int{1000, 4000, 16000} {
		cfg := workload.DefaultConfig()
		cfg.Persons = n
		cfg.Seed = 31
		base, err := workload.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		combined, err := views.Materialize(base, vs)
		if err != nil {
			log.Fatal(err)
		}
		acc, err := views.ViewAccess(workload.Access(cfg), combined.Schema(), []access.Entry{
			access.Plain("V2", []string{"id"}, cfg.VisitsPerPerson+64, 1),
			access.Plain("V1", []string{"rid"}, 1, 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		st, err := store.Open(combined, acc)
		if err != nil {
			log.Fatal(err)
		}
		rq, err := rw.Body.Query()
		if err != nil {
			log.Fatal(err)
		}
		fixed := query.Bindings{"p": scaleindep.Int(7)}
		// Prepare the rewriting once per store; the plan is reusable for
		// any p without re-analysis.
		prep, err := core.NewEngine(st).Prepare(rq, scaleindep.NewVarSet("p"))
		if err != nil {
			log.Fatal(err)
		}
		ans, err := prep.Exec(context.Background(), fixed)
		if err != nil {
			log.Fatal(err)
		}
		q2q, err := q2.Query()
		if err != nil {
			log.Fatal(err)
		}
		naive, err := eval.Answers(eval.DBSource{DB: base}, q2q, fixed)
		if err != nil {
			log.Fatal(err)
		}
		per := ans.DQ.PerRelation()
		baseReads := per["friend"] + per["person"] + per["visit"] + per["restr"]
		viewReads := per["V1"] + per["V2"]
		fmt.Printf("%-10d %-10d %-12d %-12d %-8v\n",
			n, base.Size(), baseReads, viewReads, ans.Tuples.Equal(naive))
	}
	fmt.Println("\nonly p₀'s friend tuples are read from the base data — flat in |D| (Cor 6.2).")
}

func mustView(src string) *views.View {
	cq, err := scaleindep.ParseCQ(src)
	if err != nil {
		log.Fatal(err)
	}
	v, err := views.NewView(cq)
	if err != nil {
		log.Fatal(err)
	}
	return v
}
