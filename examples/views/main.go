// Views as first-class serving citizens (Section 6): materialized views
// are created through the engine, maintained transactionally inside
// Engine.Commit, and consulted by Prepare — including to *rescue* queries
// that are not controllable over the base relations alone (Theorem 6.1 /
// Corollary 6.2).
//
// The demo runs the full lifecycle:
//
//  1. Q6 asks for the followers of p₀ — friend has no entry on its second
//     attribute, so Q6 is rejected as not controllable.
//  2. CreateView materializes VFol (friend reversed), indexed at will
//     with a caller-supplied entry; re-preparing Q6 now succeeds through
//     the view rewriting, with a static read bound. Rescue.
//  3. VNYC (visits by NYC residents, the paper's V2) lets the planner
//     undercut Q7's base plan: Prepare picks the view plan because its
//     bound is strictly smaller.
//  4. A stream of commits flows through Engine.Commit: the views are
//     maintained inside each commit, stay fresh as of every commit, and
//     the rescued answers keep matching a naive full-scan oracle.
//  5. DropView retracts VFol — Q6 is not controllable again.
//
// Run: go run ./examples/views
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"

	scaleindep "repro"
	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/workload"
)

const (
	q6Src   = "Q6(p, fn) :- friend(f, p), person(f, fn, c)"
	vfolSrc = "VFol(p, f) :- friend(f, p)"
	vnycSrc = "VNYC(id, rid) :- visit(id, rid, yy, mm, dd), person(id, pn, 'NYC')"
	q7Src   = "Q7(p, rid) := exists yy, mm, dd, pn (visit(p, rid, yy, mm, dd) and person(p, pn, 'NYC'))"
)

func main() {
	cfg := workload.DefaultConfig()
	cfg.Persons = 2000
	cfg.Seed = 31
	base, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	db, err := store.Open(base, workload.Access(cfg))
	if err != nil {
		log.Fatal(err)
	}
	eng := core.NewEngine(db)
	ctx := context.Background()
	p0 := query.Bindings{"p": scaleindep.Int(7)}

	// 1. Followers: friend is only accessible by its first attribute, so
	// no x̄-controlled plan exists over the base relations.
	q6 := mustQuery(q6Src)
	if _, err := eng.Prepare(q6, scaleindep.NewVarSet("p")); !errors.Is(err, core.ErrNotControllable) {
		log.Fatalf("expected ErrNotControllable for Q6, got %v", err)
	}
	fmt.Printf("Q6 (followers of p₀) over base relations: %v\n\n", core.ErrNotControllable)

	// 2. Materialize the reversal and index it at will (Section 6: views
	// are materialized, so they can be indexed like any base relation).
	vfol, err := eng.CreateView(mustCQ(vfolSrc),
		access.Plain("VFol", []string{"p"}, cfg.MaxFriends+64, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %s = %s (%d rows)\n", vfol.Name, vfol.Def, vfol.Rows)
	vnyc, err := eng.CreateView(mustCQ(vnycSrc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %s = %s (%d rows, entries derived from the definition's own controllability)\n\n",
		vnyc.Name, vnyc.Def, vnyc.Rows)

	prep6, err := eng.Prepare(q6, scaleindep.NewVarSet("p"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q6 re-prepared: rescued=%v via views %v, bound %v\n",
		prep6.Plan().Rescued, prep6.Plan().Views, prep6.Plan().Bound)
	fmt.Println(indent(prep6.Explain()))

	// 3. Q7 is controllable over the base relations, but the VNYC plan
	// reads strictly fewer tuples — Prepare picks it on the bound alone.
	q7 := mustQuery(q7Src)
	prep7, err := eng.Prepare(q7, scaleindep.NewVarSet("p"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q7 (NYC visits) served through %v: bound %v\n\n", prep7.Plan().Views, prep7.Plan().Bound)

	// 4. Transactional maintenance: commits flow through the engine; the
	// views are maintained inside each commit, reads charged and bounded.
	check := func(tag string) {
		ans, err := prep6.Exec(ctx, p0)
		if err != nil {
			log.Fatal(err)
		}
		naive, err := eval.Answers(eval.NewStoreSource(db, &store.ExecStats{}), q6, p0)
		if err != nil {
			log.Fatal(err)
		}
		if !ans.Tuples.Equal(naive) {
			log.Fatalf("%s: rescued answers diverge from the naive oracle", tag)
		}
		if ans.Cost.TupleReads > prep6.Plan().Bound.Reads {
			log.Fatalf("%s: %d reads above the static bound %d",
				tag, ans.Cost.TupleReads, prep6.Plan().Bound.Reads)
		}
		fmt.Printf("%-16s %d followers, %d reads (bound %d), matches naive oracle\n",
			tag, ans.Tuples.Len(), ans.Cost.TupleReads, prep6.Plan().Bound.Reads)
	}
	check("before commits:")
	var maintained int
	var viewReads int64
	for i, u := range workload.MixedCommits(db.CloneData(), cfg, 50, []int64{7}, 97) {
		res, err := eng.Commit(ctx, u)
		if err != nil {
			log.Fatalf("commit %d: %v", i, err)
		}
		maintained += res.ViewsMaintained
		viewReads += res.ViewReads
	}
	fmt.Printf("50 commits: %d view maintenances, %d maintenance reads\n", maintained, viewReads)
	for _, v := range eng.Views() {
		fmt.Printf("  %-5s rows=%-5d fresh as of commit %d\n", v.Name, v.Rows, v.FreshSeq)
	}
	check("after commits:")

	// 5. Retraction: dropping the rescuing view re-exposes the base-only
	// controllability verdict.
	if err := eng.DropView("VFol"); err != nil {
		log.Fatal(err)
	}
	_, err = eng.Prepare(q6, scaleindep.NewVarSet("p"))
	fmt.Printf("\nafter DropView(VFol), Q6: %v\n", err)
}

func mustCQ(src string) *query.CQ {
	cq, err := scaleindep.ParseCQ(src)
	if err != nil {
		log.Fatal(err)
	}
	return cq
}

func mustQuery(src string) *query.Query {
	q, err := mustCQ(src).Query()
	if err != nil {
		log.Fatal(err)
	}
	return q
}

func indent(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("    " + line + "\n")
	}
	return b.String()
}
