// Socialsearch: the paper's Graph Search scenario at scale. Generates
// social graphs of growing size and shows that bounded evaluation of Q1
// (plain access schema) and Q3 (embedded access schema with the 366-day
// bound and the one-visit-per-day FD, Example 4.6) touches a constant
// number of tuples while naive evaluation grows with |D|.
//
// Run: go run ./examples/socialsearch
package main

import (
	"fmt"
	"log"
	"time"

	scaleindep "repro"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	q1, err := scaleindep.ParseQuery(workload.Q1Src)
	if err != nil {
		log.Fatal(err)
	}
	q3, err := scaleindep.ParseQuery(workload.Q3Src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Q1(p₀): friends of p₀ in NYC — plain access schema")
	fmt.Printf("%-10s %-10s %-14s %-14s %-10s\n", "persons", "|D|", "naive reads", "bounded reads", "|D_Q|")
	for _, n := range []int{1000, 4000, 16000} {
		st := open(n)
		fixed := scaleindep.Bindings{"p": scaleindep.Int(7)}

		st.ResetCounters()
		if _, err := eval.Answers(eval.StoreSource{DB: st}, q1, fixed); err != nil {
			log.Fatal(err)
		}
		naiveReads := st.Counters().TupleReads

		eng := core.NewEngine(st)
		ans, err := eng.Answer(q1, fixed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-10d %-14d %-14d %-10d\n",
			n, st.Size(), naiveReads, ans.Cost.TupleReads, ans.DQ.Distinct())
	}

	fmt.Println("\nQ3(p₀, 2013): A-rated NYC restaurants visited by p₀'s NYC friends in 2013")
	fmt.Println("— needs the embedded entries of Example 4.6 (366 days/year + FD id,yy,mm,dd → rid)")
	fmt.Printf("%-10s %-10s %-14s %-16s %-10s\n", "persons", "|D|", "naive reads", "bounded+probes", "time")
	for _, n := range []int{1000, 4000} {
		st := open(n)
		fixed := scaleindep.Bindings{"p": scaleindep.Int(7), "yy": scaleindep.Int(2013)}

		st.ResetCounters()
		if _, err := eval.Answers(eval.StoreSource{DB: st}, q3, fixed); err != nil {
			log.Fatal(err)
		}
		naiveReads := st.Counters().TupleReads

		eng := core.NewEngine(st)
		st.ResetCounters()
		start := time.Now()
		ans, err := eng.Answer(q3, fixed)
		if err != nil {
			log.Fatal(err)
		}
		c := st.Counters()
		fmt.Printf("%-10d %-10d %-14d %-16d %-10s  (%d answers)\n",
			n, st.Size(), naiveReads, c.TupleReads+c.Memberships,
			time.Since(start).Round(time.Microsecond), ans.Tuples.Len())
	}
}

func open(persons int) *store.DB {
	cfg := workload.DefaultConfig()
	cfg.Persons = persons
	cfg.Seed = 11
	db, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st, err := store.Open(db, workload.Access(cfg))
	if err != nil {
		log.Fatal(err)
	}
	return st
}
