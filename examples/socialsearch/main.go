// Socialsearch: the paper's Graph Search scenario at scale. Generates
// social graphs of growing size and shows that bounded evaluation of Q1
// (plain access schema) and Q3 (embedded access schema with the 366-day
// bound and the one-visit-per-day FD, Example 4.6) touches a constant
// number of tuples while naive evaluation grows with |D|.
//
// Run: go run ./examples/socialsearch
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	scaleindep "repro"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	q1, err := scaleindep.ParseQuery(workload.Q1Src)
	if err != nil {
		log.Fatal(err)
	}
	q3, err := scaleindep.ParseQuery(workload.Q3Src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Q1(p₀): friends of p₀ in NYC — plain access schema")
	fmt.Printf("%-10s %-10s %-14s %-14s %-10s\n", "persons", "|D|", "naive reads", "bounded reads", "|D_Q|")
	for _, n := range []int{1000, 4000, 16000} {
		st := open(n)
		fixed := scaleindep.Bindings{"p": scaleindep.Int(7)}

		// Per-call stats: no counter resetting, no cross-talk.
		naive := &store.ExecStats{}
		if _, err := eval.Answers(eval.NewStoreSource(st, naive), q1, fixed); err != nil {
			log.Fatal(err)
		}

		// Prepare once per store, execute with per-call accounting.
		prep, err := core.NewEngine(st).Prepare(q1, scaleindep.NewVarSet("p"))
		if err != nil {
			log.Fatal(err)
		}
		ans, err := prep.Exec(context.Background(), fixed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-10d %-14d %-14d %-10d\n",
			n, st.Size(), naive.Counters.TupleReads, ans.Cost.TupleReads, ans.DQ.Distinct())
	}

	fmt.Println("\nQ3(p₀, 2013): A-rated NYC restaurants visited by p₀'s NYC friends in 2013")
	fmt.Println("— needs the embedded entries of Example 4.6 (366 days/year + FD id,yy,mm,dd → rid)")
	fmt.Printf("%-10s %-10s %-14s %-16s %-10s\n", "persons", "|D|", "naive reads", "bounded+probes", "time")
	for _, n := range []int{1000, 4000} {
		st := open(n)
		fixed := scaleindep.Bindings{"p": scaleindep.Int(7), "yy": scaleindep.Int(2013)}

		naive := &store.ExecStats{}
		if _, err := eval.Answers(eval.NewStoreSource(st, naive), q3, fixed); err != nil {
			log.Fatal(err)
		}

		eng := core.NewEngine(st)
		start := time.Now()
		ans, err := eng.AnswerContext(context.Background(), q3, fixed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-10d %-14d %-16d %-10s  (%d answers)\n",
			n, st.Size(), naive.Counters.TupleReads, ans.Cost.TupleReads+ans.Cost.Memberships,
			time.Since(start).Round(time.Microsecond), ans.Tuples.Len())
	}
}

func open(persons int) *store.DB {
	cfg := workload.DefaultConfig()
	cfg.Persons = persons
	cfg.Seed = 11
	db, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st, err := store.Open(db, workload.Access(cfg))
	if err != nil {
		log.Fatal(err)
	}
	return st
}
