// Quickstart: scale-independent evaluation of the paper's Q1 on a tiny
// hand-built database, via the public facade and its prepared-query
// serving API: prepare once, execute many times with per-call cost and
// witness accounting.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	scaleindep "repro"
)

func main() {
	// 1. Declare the schema and the access schema of Example 1.1:
	//    at most 5000 friends per person, person.id is a key.
	cat, err := scaleindep.ParseCatalog(`
relation person(id, name, city)
relation friend(id1, id2)

access friend(id1 -> *) limit 5000 time 1
access person(id -> *) limit 1 time 1
`)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Load some data.
	db := scaleindep.NewDatabase(cat.Relational)
	people := []struct {
		id   int64
		name string
		city string
	}{
		{1, "ann", "NYC"}, {2, "bob", "NYC"}, {3, "cal", "LA"}, {4, "dee", "NYC"},
	}
	for _, p := range people {
		db.MustInsert("person", scaleindep.Tuple{
			scaleindep.Int(p.id), scaleindep.Str(p.name), scaleindep.Str(p.city)})
	}
	for _, e := range [][2]int64{{1, 2}, {1, 3}, {1, 4}, {2, 3}} {
		db.MustInsert("friend", scaleindep.Tuple{scaleindep.Int(e[0]), scaleindep.Int(e[1])})
	}

	// 3. Open the engine (builds the indices the access schema calls for).
	eng, err := scaleindep.NewEngine(db, cat.Access)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Q1: friends of p who live in NYC.
	q, err := scaleindep.ParseQuery(
		"Q1(p, name) := exists id (friend(p, id) and person(id, name, 'NYC'))")
	if err != nil {
		log.Fatal(err)
	}

	// 5. Prepare once: the controllability analysis (Theorem 4.2) runs a
	//    single time and compiles the bounded plan. ErrNotControllable is
	//    the typed failure when no bounded plan exists for x̄.
	prep, err := eng.Prepare(q, scaleindep.NewVarSet("p"))
	if errors.Is(err, scaleindep.ErrNotControllable) {
		log.Fatalf("no bounded plan: %v", err)
	} else if err != nil {
		log.Fatal(err)
	}
	// EXPLAIN: the physical operator plan the derivation compiled into —
	// operator tree with per-operator static bounds, the cost-chosen
	// access order, and (on a sharded backend) each fetch's routing.
	fmt.Println("EXPLAIN:")
	fmt.Print(prep.Explain())
	fmt.Println("\nderivation it was compiled from:")
	fmt.Print(prep.Derivation().Explain())

	// 6. Execute many times with fresh bindings — no re-analysis, each
	//    call gets its own measured cost and witness set D_Q.
	ctx := context.Background()
	for _, p := range []int64{1, 2} {
		ans, err := prep.Exec(ctx, scaleindep.Bindings{"p": scaleindep.Int(p)},
			scaleindep.WithMaxReads(prep.Plan().Bound.Reads)) // runtime teeth for the static bound
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nQ1(%d): NYC friends of person %d:\n", p, p)
		for _, t := range ans.Tuples.Tuples() {
			fmt.Printf("  %s\n", t)
		}
		fmt.Printf("measured: %s\n", ans.Cost)
		fmt.Printf("witness set D_Q: %d tuples %v (static bound: %s)\n",
			ans.DQ.Distinct(), ans.DQ.PerRelation(), ans.Plan.Bound)

		// Cross-check against naive evaluation.
		naive, err := scaleindep.NaiveAnswers(db, q, scaleindep.Bindings{"p": scaleindep.Int(p)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("matches naive evaluation: %v\n", ans.Tuples.Equal(naive))
	}

	// 7. Hot path: skip witness bookkeeping when only answers matter.
	fast, err := prep.Exec(ctx, scaleindep.Bindings{"p": scaleindep.Int(1)}, scaleindep.WithoutTrace())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWithoutTrace: %d answers, DQ recorded: %v\n", fast.Tuples.Len(), fast.DQ != nil)

	// 8. Streaming: Query opens a cursor instead of materializing — the
	//    plan executes lazily, charging reads only as answers are pulled,
	//    and WithLimit stops the evaluation (and its reads) early. Range
	//    over rows.All(), or drive Next/Tuple/Err/Close by hand.
	rows, err := prep.Query(ctx, scaleindep.Bindings{"p": scaleindep.Int(1)},
		scaleindep.WithLimit(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstreaming Q1(1) with LIMIT 2:")
	for t, err := range rows.All() {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s   (reads so far: %d)\n", t, rows.Cost().TupleReads)
	}
	fmt.Printf("stopped after %d reads — the person lookups for friends beyond the limit were never issued\n",
		rows.Cost().TupleReads)
}
