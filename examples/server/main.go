// Server: the engine served over HTTP with success-tolerant admission
// control. An in-process siserve tier is mounted on a loopback socket;
// two tenants talk to it through the Go client: "gold" (generous SLA)
// prepares Q1, streams answers over NDJSON, watches the live query over
// SSE and sees a commit arrive as a delta; "bronze" (a 30-read
// per-query ceiling) is rejected at prepare time — before any execution
// — with the plan's static bound M in the typed error, because the
// bound is known at compile time (the paper's controllability analysis
// is what makes PIQL-style admission possible). The tier then drains
// gracefully: the watcher gets a clean close, new work gets 503.
//
// Run: go run ./examples/server
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	scaleindep "repro"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/workload"
)

func main() {
	// Engine over the Example 1.1 workload.
	cfg := workload.DefaultConfig()
	cfg.Persons = 500
	db, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := scaleindep.NewEngine(db, workload.Access(cfg))
	if err != nil {
		log.Fatal(err)
	}

	// The serving tier: gold is effectively unlimited, bronze may not run
	// any query entitled to more than 30 reads.
	srv := server.NewServer(server.Config{
		Engine: eng,
		Policies: map[string]server.TenantPolicy{
			"gold":   {ReadBudget: 1_000_000, Window: time.Second},
			"bronze": {MaxBound: 30},
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	ctx := context.Background()
	fmt.Printf("siserve tier on %s (|D| = %d)\n\n", base, eng.DB.Size())

	// Gold prepares Q1 and learns its static bound before running anything.
	gold := client.New(base, client.WithTenant("gold"))
	prep, err := gold.Prepare(ctx, workload.Q1Src, "p")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gold: prepared %s as %s — static bound M = %d reads\n", prep.Name, prep.Handle, prep.BoundReads)

	// Stream the answer for p = 1 over the wire.
	rows, err := prep.Query(ctx, scaleindep.Bindings{"p": scaleindep.Int(1)})
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for rows.Next() {
		fmt.Printf("gold:   answer %v\n", rows.Tuple())
		n++
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	st := rows.Stats()
	rows.Close()
	fmt.Printf("gold: %d answers in %d reads (≤ %d admitted)\n\n", n, st.Reads, st.Bound)

	// Bronze cannot even prepare it: M exceeds its 30-read ceiling.
	bronze := client.New(base, client.WithTenant("bronze"))
	_, err = bronze.Prepare(ctx, workload.Q1Src, "p")
	var adm *server.AdmissionError
	if !errors.As(err, &adm) {
		log.Fatalf("expected an admission rejection, got %v", err)
	}
	fmt.Printf("bronze: rejected before execution — bound %d > SLA limit %d (%v)\n\n",
		adm.Bound, adm.Limit, errors.Is(err, scaleindep.ErrBudgetExceeded))

	// Gold watches the live query; a commit lands as an SSE delta.
	w, err := prep.Watch(ctx, scaleindep.Bindings{"p": scaleindep.Int(1)}, false)
	if err != nil {
		log.Fatal(err)
	}
	u := scaleindep.NewUpdate()
	u.Insert("person", scaleindep.Tuple{scaleindep.Int(700_001), scaleindep.Str("new-friend"), scaleindep.Str("NYC")})
	u.Insert("friend", scaleindep.Tuple{scaleindep.Int(1), scaleindep.Int(700_001)})
	cres, err := gold.Commit(ctx, u)
	if err != nil {
		log.Fatal(err)
	}
	d, err := w.Next()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("watch: commit seq %d → delta +%d/-%d in %d reads (≤ %d)\n\n", cres.Seq, len(d.Ins), len(d.Del), d.Reads, d.Bound)

	// Graceful drain: the watcher sees a clean close, new work gets 503.
	go func() {
		drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		srv.Drain(drainCtx)
	}()
	if _, err := w.Next(); err != nil {
		fmt.Println("watch: closed cleanly by server drain")
	}
	w.Close()
	if _, err := gold.Prepare(ctx, workload.Q2Src, "p"); err != nil {
		fmt.Printf("drained tier refuses new work: %v\n", err)
	}
	hs.Shutdown(ctx)
}
