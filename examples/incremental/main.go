// Incremental: Example 1.1(b). Q2(p₀) — A-rated NYC restaurants visited by
// p₀'s NYC friends — is maintained incrementally under a stream of visit
// insertions: each update costs a handful of indexed fetches (≈ 3 per
// inserted tuple, as the paper computes), independent of |D|, while
// recomputation scans everything.
//
// Run: go run ./examples/incremental
package main

import (
	"fmt"
	"log"

	scaleindep "repro"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/incr"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	q2, err := scaleindep.ParseCQ(workload.Q2Src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q2(p₀) maintained under visit insertions")
	fmt.Printf("%-10s %-10s %-12s %-18s %-16s %-8s\n",
		"persons", "|D|", "insertions", "reads+probes", "recompute reads", "exact")

	for _, n := range []int{1000, 4000, 16000} {
		cfg := workload.DefaultConfig()
		cfg.Persons = n
		cfg.Seed = 23
		db, err := workload.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		st, err := store.Open(db, workload.Access(cfg))
		if err != nil {
			log.Fatal(err)
		}
		eng := core.NewEngine(st)
		fixed := scaleindep.Bindings{"p": scaleindep.Int(7)}

		maint, err := incr.NewCQMaintainer(eng, q2, fixed)
		if err != nil {
			log.Fatal(err)
		}
		stream := workload.VisitInsertions(st.Data(), cfg, 16, 99)

		st.ResetCounters()
		for _, u := range stream {
			if _, _, err := maint.Apply(u); err != nil {
				log.Fatal(err)
			}
		}
		c := st.Counters()
		incCost := c.TupleReads + c.Memberships

		// Recompute baseline over the updated store, measured with its own
		// per-call stats so the maintenance counters above stay untouched.
		es := &store.ExecStats{}
		want, err := eval.AnswersCQ(eval.NewStoreSource(st, es), q2, fixed)
		if err != nil {
			log.Fatal(err)
		}
		recompute := es.Counters.TupleReads

		fmt.Printf("%-10d %-10d %-12d %-18d %-16d %-8v\n",
			n, st.Size(), len(stream), incCost, recompute, maint.Answers().Equal(want))
	}
	fmt.Println("\nreads+probes stays flat in |D| (incremental scale independence, Prop 5.5);")
	fmt.Println("recompute reads grow linearly with the database.")
}
