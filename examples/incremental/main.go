// Incremental: Example 1.1(b) as a live query. Q2(p₀) — A-rated NYC
// restaurants visited by p₀'s NYC friends — is watched through the
// serving engine's subscription API while a randomized stream of mixed
// insert/delete commits (biased toward p₀) runs through Engine.Commit:
// each commit is maintained with a handful of indexed fetches and probes,
// independent of |D|, while recomputation scans everything. The deltas
// stream out of the Live handle as the commits land.
//
// Run: go run ./examples/incremental
package main

import (
	"context"
	"fmt"
	"log"

	scaleindep "repro"
	"repro/internal/eval"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	q2, err := scaleindep.ParseQuery("Q2(p, rn) := exists id, rid, yy, mm, dd, pn (friend(p, id) and visit(id, rid, yy, mm, dd) and person(id, pn, 'NYC') and restr(rid, rn, 'NYC', 'A'))")
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	fmt.Println("Q2(p₀) watched live under a mixed insert/delete commit stream")
	fmt.Printf("%-10s %-10s %-10s %-8s %-18s %-16s %-8s\n",
		"persons", "|D|", "commits", "deltas", "reads+probes", "recompute reads", "exact")

	for _, n := range []int{1000, 4000, 16000} {
		cfg := workload.DefaultConfig()
		cfg.Persons = n
		cfg.Seed = 23
		db, err := workload.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		stream := workload.MixedCommits(db, cfg, 24, []int64{7}, 99)
		st, err := store.Open(db, workload.Access(cfg))
		if err != nil {
			log.Fatal(err)
		}
		eng := scaleindep.NewEngineOn(st)
		fixed := scaleindep.Bindings{"p": scaleindep.Int(7)}

		// Prepare once, then subscribe: the initial snapshot runs through
		// the bounded plan, and every commit below maintains it.
		prep, err := eng.Prepare(q2, scaleindep.NewVarSet("p"))
		if err != nil {
			log.Fatal(err)
		}
		live, err := prep.Watch(ctx, fixed)
		if err != nil {
			log.Fatal(err)
		}

		var maintReads int64
		for _, u := range stream {
			res, err := eng.Commit(ctx, u)
			if err != nil {
				log.Fatal(err)
			}
			maintReads += res.Maintenance.TupleReads + res.Maintenance.Memberships
		}
		deltas := 0
		live.Close()
		for d, err := range live.Deltas() {
			if err != nil {
				log.Fatal(err)
			}
			if d.Cost.TupleReads > d.Bound {
				log.Fatalf("maintenance read %d tuples over its bound %d", d.Cost.TupleReads, d.Bound)
			}
			deltas += len(d.Ins) + len(d.Del)
		}

		// Recompute baseline over the updated store, measured with its own
		// per-call stats so the maintenance counters above stay untouched.
		es := &scaleindep.ExecStats{}
		want, err := eval.Answers(eval.NewStoreSource(st, es), q2, fixed)
		if err != nil {
			log.Fatal(err)
		}
		recompute := es.Counters.TupleReads

		fmt.Printf("%-10d %-10d %-10d %-8d %-18d %-16d %-8v\n",
			n, st.Size(), len(stream), deltas, maintReads, recompute, live.Snapshot().Equal(want))
	}
	fmt.Println("\nmaintenance reads stay flat in |D| (incremental scale independence, Prop 5.5);")
	fmt.Println("recomputation reads grow linearly with the database.")
}
