// Example sharded serves bounded social-search queries from a
// hash-partitioned 4-shard store while a background writer keeps
// committing (and undoing) friend-list updates through the engine's
// transactional write path — the serving shape the sharded backend
// exists for: reads stay bounded and route to single shards, writes
// contend only per-shard locks, and the per-call counters prove both.
//
// A live dashboard rides along: one person's Q1 answers are watched
// through the subscription API, so every commit touching their friend
// list streams a bounded-maintenance delta while thousands of bounded
// reads serve concurrently.
//
// Run with: go run ./examples/sharded
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	scaleindep "repro"
	"repro/internal/workload"
)

func main() {
	cfg := workload.DefaultConfig()
	cfg.Persons = 4000
	cfg.Seed = 3
	data, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Partition across 4 shards. Routing keys are chosen from the access
	// schema (person by id, friend by id1, ...); WithRoute would override.
	st, err := scaleindep.OpenSharded(data, workload.Access(cfg), 4)
	if err != nil {
		log.Fatal(err)
	}
	eng := scaleindep.NewEngineOn(st)
	fmt.Printf("4-shard store over |D| = %d tuples; shard sizes %v\n", st.Size(), st.ShardSizes())
	for _, rel := range st.Schema().Names() {
		fmt.Printf("  %-8s routed by %v\n", rel, st.Route(rel))
	}

	// Foreground: prepare once, execute many — while the writer runs.
	q, err := scaleindep.ParseQuery(workload.Q1Src)
	if err != nil {
		log.Fatal(err)
	}
	prep, err := eng.Prepare(q, scaleindep.NewVarSet("p"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprepared %s: static bound %s\n\n", q.Name, prep.Plan().Bound)
	ctx := context.Background()

	// Live dashboard: watch one churned person's NYC friends. Every commit
	// touching their friend list maintains this handle with bounded work
	// and streams a delta; the consumer below counts them.
	watchedID := int64(900003)
	live, err := prep.Watch(ctx, scaleindep.Bindings{"p": scaleindep.Int(watchedID)})
	if err != nil {
		log.Fatal(err)
	}
	defer live.Close()
	var dashIns, dashDel, dashReads atomic.Int64
	dashDone := make(chan struct{})
	go func() {
		defer close(dashDone)
		for d, err := range live.Deltas() {
			if err != nil {
				log.Fatalf("dashboard: %v", err)
			}
			dashIns.Add(int64(len(d.Ins)))
			dashDel.Add(int64(len(d.Del)))
			dashReads.Add(d.Cost.TupleReads)
		}
	}()

	// Background writer: continuously grow and shrink friend lists through
	// the engine's commit pipeline. Each batch routes to a single shard,
	// so it locks 1/4 of the store instead of all of it — and every batch
	// carries a commit sequence number and notifies the dashboard.
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	var batches atomic.Int64
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ins := newFriendBatch(int64(900000 + i%64))
			if _, err := eng.Commit(ctx, ins); err != nil {
				log.Fatalf("writer: %v", err)
			}
			if _, err := eng.Commit(ctx, ins.Inverse()); err != nil {
				log.Fatalf("writer: %v", err)
			}
			batches.Add(2)
		}
	}()

	deadline := time.Now().Add(300 * time.Millisecond)
	calls := 0
	var reads, maxReads int64
	for p := 0; time.Now().Before(deadline); p++ {
		ans, err := prep.Exec(ctx, scaleindep.Bindings{"p": scaleindep.Int(int64(p % cfg.Persons))},
			scaleindep.WithMaxReads(prep.Plan().Bound.Reads))
		if err != nil {
			log.Fatalf("exec p=%d: %v", p, err)
		}
		calls++
		reads += ans.Cost.TupleReads
		if ans.Cost.TupleReads > maxReads {
			maxReads = ans.Cost.TupleReads
		}
	}
	close(stop)
	<-writerDone

	fmt.Printf("served %d bounded executions during %d concurrent commits\n", calls, batches.Load())
	fmt.Printf("  mean reads/call %.1f, max %d — every call ≤ the static bound %d\n",
		float64(reads)/float64(calls), maxReads, prep.Plan().Bound.Reads)

	// Dashboard wrap-up: the stream must land exactly on a fresh execution.
	live.Close()
	<-dashDone
	finalAns, err := prep.Exec(ctx, scaleindep.Bindings{"p": scaleindep.Int(watchedID)})
	if err != nil {
		log.Fatal(err)
	}
	exact := live.Snapshot().Equal(finalAns.Tuples)
	fmt.Printf("\nlive dashboard on Q1(p=%d): %d answers appeared / %d disappeared over %d commits folded\n",
		watchedID, dashIns.Load(), dashDel.Load(), live.Seq())
	fmt.Printf("  %d maintenance reads total; snapshot ≡ fresh Exec: %v\n", dashReads.Load(), exact)
	if !exact {
		log.Fatal("live snapshot diverged")
	}

	fmt.Println("\nper-shard counters (reads/lookups land where the tuples live):")
	for i, c := range st.ShardCounters() {
		fmt.Printf("  shard %d: %s\n", i, c)
	}
	fmt.Printf("merged:    %s\n", st.Counters())

	// A full scatter-gather read for contrast: one scan, |R| reads split
	// across every shard in parallel.
	st.ResetCounters()
	es := &scaleindep.ExecStats{}
	if _, err := st.ScanInto(es, "friend"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscatter scan of friend: %s (one partial scan per shard)\n", es.Counters)
}

// newFriendBatch builds an insert-only update for one synthetic person:
// eight friend edges that all hash to that person's shard.
func newFriendBatch(id int64) *scaleindep.Update {
	u := scaleindep.NewUpdate()
	for k := int64(0); k < 8; k++ {
		u.Insert("friend", scaleindep.Tuple{scaleindep.Int(id), scaleindep.Int(k)})
	}
	return u
}
