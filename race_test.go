package scaleindep

import (
	"context"
	"sync"
	"testing"

	"repro/internal/workload"
)

// A single shared Engine serves 8 concurrent executors of one prepared
// query with different bindings; answers, per-call costs and witness sets
// must stay independent. This is the serving-shape guarantee of the API
// redesign — run under `go test -race ./...`.
func TestConcurrentEngineServing(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Persons = 400
	cfg.Seed = 5
	db, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(db, workload.Access(cfg))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(workload.Q1Src)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := eng.Prepare(q, NewVarSet("p"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Sequential oracle.
	const people = 40
	want := make([]int, people)
	for p := 0; p < people; p++ {
		ans, err := prep.Exec(ctx, Bindings{"p": Int(int64(p))})
		if err != nil {
			t.Fatal(err)
		}
		want[p] = ans.Tuples.Len()
	}

	const executors = 8
	var wg sync.WaitGroup
	for g := 0; g < executors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p := (g*13 + i) % people
				ans, err := prep.Exec(ctx, Bindings{"p": Int(int64(p))})
				if err != nil {
					t.Error(err)
					return
				}
				if ans.Tuples.Len() != want[p] {
					t.Errorf("executor %d: p=%d got %d answers, want %d", g, p, ans.Tuples.Len(), want[p])
					return
				}
				if ans.Cost.TupleReads > prep.Plan().Bound.Reads {
					t.Errorf("executor %d: p=%d cost %s exceeds static bound %s (counter cross-talk)", g, p, ans.Cost, prep.Plan().Bound)
					return
				}
				// One-shot Answer path concurrently on the same engine: the
				// plan cache must be race-free too.
				if _, err := eng.Answer(q, Bindings{"p": Int(int64(p))}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
