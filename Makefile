GO ?= go

.PHONY: check build test race vet bench bench-smoke serving shardscale

## check: the CI gate — vet, build, and race-enabled tests.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

## bench-smoke: the CI benchmark gate — every benchmark runs once.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

serving:
	$(GO) run ./cmd/sibench -serving

## shardscale: concurrent-client throughput vs shard count.
shardscale:
	$(GO) run ./cmd/sibench -shardscale
