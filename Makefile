GO ?= go

.PHONY: check build test race vet staticcheck sivet fuzz-smoke bench bench-smoke serving shardscale reorder live live-smoke flat flat-smoke serve serve-smoke metrics-smoke views views-smoke overhead-gate

## check: the CI gate — vet, build, and race-enabled tests.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

## bench-smoke: the CI benchmark gate — every benchmark runs once.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

## staticcheck: run honnef.co/go/tools if installed (CI runs it always).
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || echo "staticcheck not installed; CI runs it (https://staticcheck.dev)"

## sivet: the project-invariant analyzers — uncharged reads past the
## ExecStats charge points, lock-discipline violations on `guarded by`
## fields, untyped or wrongly-compared errors, and wire structs whose
## JSON tags drift from snake_case. Exits nonzero with file:line
## diagnostics; DESIGN.md §10 maps each analyzer to the invariant it pins.
sivet:
	$(GO) run ./cmd/sivet ./...

## fuzz-smoke: the CI fuzz gate — each native fuzz target gets a 10s
## coverage-guided run: the DSL parser (no panics, positioned errors,
## print→parse fixpoint), the Prometheus exporter against its own strict
## parser, and the injective tuple-key encoding every index ride on.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzDSLParser -fuzztime=10s ./internal/parser/
	$(GO) test -run=NONE -fuzz=FuzzExpfmtRoundTrip -fuzztime=10s ./internal/obs/
	$(GO) test -run=NONE -fuzz=FuzzTupleKeyInjective -fuzztime=10s ./internal/relation/

serving:
	$(GO) run ./cmd/sibench -serving

## shardscale: concurrent-client throughput vs shard count.
shardscale:
	$(GO) run ./cmd/sibench -shardscale

## reorder: cost-ordered vs analysis-order plans, reads/op and µs/op.
reorder:
	$(GO) run ./cmd/sibench -reorder

## live: maintenance reads per commit vs full re-execution on watched Q2.
live:
	$(GO) run ./cmd/sibench -live

## live-smoke: the CI gate — quick -live run; exits nonzero unless
## maintenance is strictly cheaper than re-execution.
live-smoke:
	$(GO) run ./cmd/sibench -live -quick

## flat: the commit-flatness measurement — median commit wall latency on
## the mixed stream at |D|≈30k vs |D|≈150k must stay within 2x.
flat:
	$(GO) run ./cmd/sibench -flat

## flat-smoke: the CI gate — quick -flat run; exits nonzero if the large
## instance's commit p50 exceeds 2x the small one's (write latency grew
## with |D|).
flat-smoke:
	$(GO) run ./cmd/sibench -flat -quick

## serve: load-test the HTTP serving tier — q/s, p50/p99, admission
## reject counts under concurrent clients, a committer, and a watcher.
serve:
	$(GO) run ./cmd/sibench -serve

## serve-smoke: the CI gate — quick -serve run; exits nonzero on a bound
## violation, a misclassified rejection, or a goroutine leak through drain.
serve-smoke:
	$(GO) run ./cmd/sibench -serve -quick

## metrics-smoke: the CI exporter gate — drive a live serving tier, scrape
## GET /metricsz over HTTP, strict-parse the Prometheus text exposition,
## and fail on any malformed line, missing family, or miscounted traffic.
metrics-smoke:
	$(GO) run ./cmd/sibench -metricsz

## views: materialized-view serving — reads/op base-plan vs view-plan on
## Q7, rescued Q6 cost, and transactional maintenance across a commit
## stream.
views:
	$(GO) run ./cmd/sibench -views

## views-smoke: the CI gate — quick -views run; exits nonzero if the
## optimizer picks a strictly worse view plan, a rescued query exceeds
## its static bound, or a view-served answer diverges from the oracle.
views-smoke:
	$(GO) run ./cmd/sibench -views -quick

## overhead-gate: the CI instrumentation budget — default-on telemetry
## must cost at most 5% wall time on the prepared-exec hot path.
overhead-gate:
	SI_OVERHEAD_GATE=1 $(GO) test -run TestInstrumentationOverheadGate -v .
