GO ?= go

.PHONY: check build test race vet bench serving

## check: the CI gate — vet, build, and race-enabled tests.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

serving:
	$(GO) run ./cmd/sibench -serving
