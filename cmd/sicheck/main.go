// Command sicheck analyzes the controllability of a query under an access
// schema: it prints the minimal controlling variable sets, the derivation
// for a requested set, the compiled bounded plan and its static cost bound
// (Section 4 of the paper), and answers QCntl/QCntl_min questions
// (Theorem 4.4).
//
// Usage:
//
//	sicheck -catalog catalog.txt -query "Q1(p, name) := exists id (friend(p, id) and person(id, name, 'NYC'))" [-fix p] [-k 1] [-min p]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/query"
)

func main() {
	catalogPath := flag.String("catalog", "", "path to a catalog file (relation/access/fd declarations)")
	querySrc := flag.String("query", "", "query text, e.g. \"Q(x) := R(x, y)\"")
	fix := flag.String("fix", "", "comma-separated variables to check controllability for (default: report all minimal sets)")
	k := flag.Int("k", -1, "QCntl: is there a controlling set of size ≤ k?")
	min := flag.String("min", "", "QCntl_min: is there a minimal controlling set containing this variable?")
	advise := flag.Bool("advise", false, "when -fix is given and the query is not controlled, propose access entries that would make it so")
	flag.Parse()

	if *catalogPath == "" || *querySrc == "" {
		flag.Usage()
		os.Exit(2)
	}
	catText, err := os.ReadFile(*catalogPath)
	if err != nil {
		fatal(err)
	}
	cat, err := parser.ParseCatalog(string(catText))
	if err != nil {
		fatal(fmt.Errorf("catalog: %w", err))
	}
	q, err := parser.ParseQuery(*querySrc)
	if err != nil {
		fatal(fmt.Errorf("query: %w", err))
	}
	an := core.NewAnalyzer(cat.Access)
	res, err := an.AnalyzeQuery(q)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("query: %s\n", q)
	fmt.Printf("access schema:\n%s\n\n", indent(cat.Access.String()))
	fam := res.Family()
	if len(fam) == 0 {
		fmt.Println("no controlling sets derivable: the query is not controlled under this access schema")
	} else {
		fmt.Println("minimal controlling sets:")
		for _, s := range fam {
			d := res.Controls(s)
			fmt.Printf("  %-24s %s\n", s.String(), core.CostOf(d))
		}
	}
	if res.Truncated {
		fmt.Println("(analysis truncated: more sets may exist)")
	}
	if *fix != "" {
		x := query.NewVarSet(splitVars(*fix)...)
		d := res.Controls(x)
		fmt.Printf("\n%s-controlled: %v\n", x, d != nil)
		if d != nil {
			fmt.Println(core.NewPlan(d).Describe())
		} else if *advise {
			adv, err := core.Advise(cat.Access, q, x, nil)
			if err != nil {
				fmt.Printf("no advice: %v\n", err)
			} else {
				fmt.Println("proposed access entries (confirm the N bounds against your data):")
				for _, e := range adv.Entries {
					fmt.Printf("  %s\n", e.String())
				}
				fmt.Println("\nresulting plan:")
				fmt.Println(core.NewPlan(adv.Derivation).Describe())
			}
		}
	}
	if *k >= 0 {
		set, ok, err := core.QCntl(an, q, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nQCntl(k=%d): %v", *k, ok)
		if ok {
			fmt.Printf(" witness %s", set)
		}
		fmt.Println()
	}
	if *min != "" {
		set, ok, err := core.QCntlMin(an, q, *min)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("QCntl_min(%s): %v", *min, ok)
		if ok {
			fmt.Printf(" witness %s", set)
		}
		fmt.Println()
	}
}

func splitVars(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sicheck:", err)
	os.Exit(1)
}
