// Command siserve serves a scale-independent query engine over HTTP: the
// network front of the repo's serving tier. It loads the Example 1.1
// experiment workload (or a sharded copy), mounts internal/server on it,
// and serves until interrupted — at which point it drains gracefully:
// in-flight query streams finish, watchers receive a clean close event,
// and new requests are refused with 503.
//
// Endpoints (see internal/server):
//
//	POST /prepare   compile a query for a controlling set; returns the
//	                plan handle, the static read bound M, and EXPLAIN
//	POST /query     stream an admitted execution as NDJSON
//	POST /commit    apply a transactional update
//	GET  /watch     subscribe to a live query over SSE
//	POST /views     materialize a CQ as a transactionally maintained view
//	GET  /views     registered view states (rows, freshness, entries)
//	DELETE /views/{name}  drop a view
//	GET  /statusz   unified engine + admission observability snapshot
//	GET  /metricsz  metrics registry in Prometheus text format
//
// With -admin, a second listener additionally serves /metricsz, /statusz
// and the net/http/pprof profiling handlers, keeping profiling off the
// serving address.
//
// The default tenant policy is configurable from the command line; a
// zero value means unlimited:
//
//	siserve -addr :8080 -shards 4 -max-bound 500 -read-budget 10000 -window 1s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	adminAddr := flag.String("admin", "", "admin listen address serving /metricsz, /statusz and /debug/pprof (empty = disabled; /metricsz is always on the main address too)")
	shards := flag.Int("shards", 0, "serve over the hash-sharded backend with this many shards (0 = single-node)")
	persons := flag.Int("persons", 1000, "workload size: number of persons in the generated dataset")
	seed := flag.Int64("seed", 1, "workload generator seed")
	maxBound := flag.Int64("max-bound", 0, "default tenant SLA: reject queries whose static read bound exceeds this (0 = unlimited)")
	readBudget := flag.Int64("read-budget", 0, "default tenant SLA: cumulative admitted-read budget per window (0 = unlimited)")
	window := flag.Duration("window", time.Second, "budget accounting window")
	maxConcurrent := flag.Int("max-concurrent", 0, "default tenant SLA: max in-flight queries (0 = unlimited)")
	watchBuffer := flag.Int("watch-buffer", 64, "per-watcher delta queue depth before coalescing")
	slowQuery := flag.Duration("slow-query", 100*time.Millisecond, "log queries at or above this wall time (0 = off)")
	slowCommit := flag.Duration("slow-commit", 100*time.Millisecond, "log commits at or above this pipeline time (0 = off)")
	var viewDefs []string
	flag.Func("view", "materialize this CQ as a transactionally maintained view at startup (repeatable, e.g. \"V(id, rid) :- visit(id, rid, yy, mm, dd), person(id, pn, 'NYC')\"); further views can be created at runtime via POST /views", func(s string) error {
		viewDefs = append(viewDefs, s)
		return nil
	})
	flag.Parse()

	if err := run(*addr, *adminAddr, *shards, *persons, *seed, viewDefs, server.Config{
		DefaultPolicy: server.TenantPolicy{
			MaxBound:      *maxBound,
			ReadBudget:    *readBudget,
			Window:        *window,
			MaxConcurrent: *maxConcurrent,
		},
		WatchBuffer: *watchBuffer,
		Metrics:     obs.NewRegistry(),
		Logger:      slog.New(slog.NewTextHandler(os.Stderr, nil)),
		SlowQuery:   *slowQuery,
		SlowCommit:  *slowCommit,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "siserve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, adminAddr string, shards, persons int, seed int64, viewDefs []string, cfg server.Config) error {
	wcfg := workload.DefaultConfig()
	wcfg.Persons = persons
	wcfg.Seed = seed
	data, err := workload.Generate(wcfg)
	if err != nil {
		return err
	}
	acc := workload.Access(wcfg)
	var b store.Backend
	if shards > 0 {
		b, err = shard.Open(data, acc, shards)
	} else {
		b, err = store.Open(data, acc)
	}
	if err != nil {
		return err
	}
	cfg.Engine = core.NewEngine(b)
	for _, src := range viewDefs {
		def, err := parser.ParseCQ(src)
		if err != nil {
			return fmt.Errorf("-view %q: %w", src, err)
		}
		info, err := cfg.Engine.CreateView(def)
		if err != nil {
			return fmt.Errorf("-view %q: %w", src, err)
		}
		fmt.Printf("siserve: view %s materialized (%d rows)\n", info.Name, info.Rows)
	}
	srv := server.NewServer(cfg)

	hs := &http.Server{Addr: addr, Handler: srv}
	backend := "single-node"
	if shards > 0 {
		backend = fmt.Sprintf("%d-shard", shards)
	}
	fmt.Printf("siserve: %s backend, |D| = %d tuples, serving on %s\n", backend, b.Size(), addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()

	// Admin mux: profiling and scrape endpoints on a separate listener,
	// so pprof is never exposed on the serving address.
	var admin *http.Server
	if adminAddr != "" {
		amux := http.NewServeMux()
		amux.HandleFunc("/debug/pprof/", pprof.Index)
		amux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		amux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		amux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		amux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		amux.HandleFunc("GET /metricsz", func(w http.ResponseWriter, r *http.Request) {
			srv.ServeHTTP(w, r) // same registry + scrape-time collection as the main mux
		})
		amux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
			srv.ServeHTTP(w, r)
		})
		admin = &http.Server{Addr: adminAddr, Handler: amux}
		fmt.Printf("siserve: admin on %s (/metricsz, /statusz, /debug/pprof)\n", adminAddr)
		go admin.ListenAndServe()
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("siserve: draining (in-flight streams finish, watchers close)")
	drainCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "siserve: %v\n", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if admin != nil {
		admin.Shutdown(drainCtx)
	}
	st := srv.Status()
	fmt.Printf("siserve: drained; served %d handles, commit seq %d\n", st.Handles, st.Engine.CommitSeq)
	return nil
}
