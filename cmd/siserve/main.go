// Command siserve serves a scale-independent query engine over HTTP: the
// network front of the repo's serving tier. It loads the Example 1.1
// experiment workload (or a sharded copy), mounts internal/server on it,
// and serves until interrupted — at which point it drains gracefully:
// in-flight query streams finish, watchers receive a clean close event,
// and new requests are refused with 503.
//
// Endpoints (see internal/server):
//
//	POST /prepare   compile a query for a controlling set; returns the
//	                plan handle, the static read bound M, and EXPLAIN
//	POST /query     stream an admitted execution as NDJSON
//	POST /commit    apply a transactional update
//	GET  /watch     subscribe to a live query over SSE
//	GET  /statusz   unified engine + admission observability snapshot
//
// The default tenant policy is configurable from the command line; a
// zero value means unlimited:
//
//	siserve -addr :8080 -shards 4 -max-bound 500 -read-budget 10000 -window 1s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 0, "serve over the hash-sharded backend with this many shards (0 = single-node)")
	persons := flag.Int("persons", 1000, "workload size: number of persons in the generated dataset")
	seed := flag.Int64("seed", 1, "workload generator seed")
	maxBound := flag.Int64("max-bound", 0, "default tenant SLA: reject queries whose static read bound exceeds this (0 = unlimited)")
	readBudget := flag.Int64("read-budget", 0, "default tenant SLA: cumulative admitted-read budget per window (0 = unlimited)")
	window := flag.Duration("window", time.Second, "budget accounting window")
	maxConcurrent := flag.Int("max-concurrent", 0, "default tenant SLA: max in-flight queries (0 = unlimited)")
	watchBuffer := flag.Int("watch-buffer", 64, "per-watcher delta queue depth before coalescing")
	flag.Parse()

	if err := run(*addr, *shards, *persons, *seed, server.Config{
		DefaultPolicy: server.TenantPolicy{
			MaxBound:      *maxBound,
			ReadBudget:    *readBudget,
			Window:        *window,
			MaxConcurrent: *maxConcurrent,
		},
		WatchBuffer: *watchBuffer,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "siserve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, shards, persons int, seed int64, cfg server.Config) error {
	wcfg := workload.DefaultConfig()
	wcfg.Persons = persons
	wcfg.Seed = seed
	data, err := workload.Generate(wcfg)
	if err != nil {
		return err
	}
	acc := workload.Access(wcfg)
	var b store.Backend
	if shards > 0 {
		b, err = shard.Open(data, acc, shards)
	} else {
		b, err = store.Open(data, acc)
	}
	if err != nil {
		return err
	}
	cfg.Engine = core.NewEngine(b)
	srv := server.NewServer(cfg)

	hs := &http.Server{Addr: addr, Handler: srv}
	backend := "single-node"
	if shards > 0 {
		backend = fmt.Sprintf("%d-shard", shards)
	}
	fmt.Printf("siserve: %s backend, |D| = %d tuples, serving on %s\n", backend, b.Size(), addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("siserve: draining (in-flight streams finish, watchers close)")
	drainCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "siserve: %v\n", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	st := srv.Status()
	fmt.Printf("siserve: drained; served %d handles, commit seq %d\n", st.Handles, st.Engine.CommitSeq)
	return nil
}
