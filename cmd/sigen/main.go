// Command sigen generates the synthetic social-graph workload (the
// substitute for the paper's Facebook Graph Search dataset, Example 1.1)
// and writes it as one CSV file per relation plus a catalog file with the
// matching access schema.
//
// Usage:
//
//	sigen -out data/ -persons 10000 -max-friends 50 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/relation"
	"repro/internal/workload"
)

func main() {
	out := flag.String("out", "data", "output directory")
	persons := flag.Int("persons", 10000, "number of persons")
	maxFriends := flag.Int("max-friends", 50, "hard cap on friends per person (the paper's 5000)")
	avgFriends := flag.Int("avg-friends", 10, "average friends per person")
	restaurants := flag.Int("restaurants", 200, "number of restaurants")
	visits := flag.Int("visits", 4, "visits per person")
	seed := flag.Int64("seed", 1, "random seed (generation is deterministic per seed)")
	flag.Parse()

	cfg := workload.DefaultConfig()
	cfg.Persons = *persons
	cfg.MaxFriends = *maxFriends
	cfg.AvgFriends = *avgFriends
	cfg.Restaurants = *restaurants
	cfg.VisitsPerPerson = *visits
	cfg.Seed = *seed

	db, err := workload.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	acc := workload.Access(cfg)
	if err := acc.Conforms(db); err != nil {
		fatal(fmt.Errorf("generated data violates its own access schema: %w", err))
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range db.Schema().Names() {
		path := filepath.Join(*out, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := relation.WriteCSV(f, db.Rel(name)); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d tuples)\n", path, db.Rel(name).Len())
	}
	catalog := catalogText(cfg)
	catPath := filepath.Join(*out, "catalog.txt")
	if err := os.WriteFile(catPath, []byte(catalog), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", catPath)
	fmt.Printf("total |D| = %d tuples\n", db.Size())
}

// catalogText renders the schema + access schema in the parseable catalog
// syntax.
func catalogText(cfg workload.Config) string {
	s := ""
	for _, rs := range workload.Schema().Rels() {
		s += "relation " + rs.String() + "\n"
	}
	s += "\n"
	for _, e := range workload.Access(cfg).Explicit() {
		s += e.String() + "\n"
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sigen:", err)
	os.Exit(1)
}
