// Command sibench runs the full experiment suite: the Table 1 validation
// tables, the Example 1.1 scaling series, and the per-theorem experiments
// (see DESIGN.md §3 for the index). With -markdown it emits the body of
// EXPERIMENTS.md.
//
// Usage:
//
//	sibench            # full suite, plain-text tables
//	sibench -quick     # smaller sizes
//	sibench -markdown  # markdown tables
//	sibench -only F1a  # one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run smaller instances")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	only := flag.String("only", "", "run a single experiment by id (T1, F1a, F1b, F1c, X4.4, X4.5, X5.4, X6.1, XGLT)")
	flag.Parse()

	start := time.Now()
	ran := 0
	for _, e := range bench.All() {
		if *only != "" && e.ID != *only {
			continue
		}
		tables, err := e.Run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sibench: experiment %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *markdown {
				fmt.Println(t.Markdown())
			} else {
				fmt.Println(t.String())
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "sibench: no experiment matched %q\n", *only)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "sibench: %d experiments in %s\n", ran, time.Since(start).Round(time.Millisecond))
}
