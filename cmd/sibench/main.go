// Command sibench runs the full experiment suite: the Table 1 validation
// tables, the Example 1.1 scaling series, and the per-theorem experiments
// (see DESIGN.md §9 for the index). With -markdown it emits the body of
// EXPERIMENTS.md. With -serving it instead benchmarks the serving API:
// per-call analysis vs the transparent plan cache vs a prepared query.
//
// With -shardscale it compares concurrent-client serving throughput on
// the single-node backend against the hash-sharded backend at 1/2/4/8
// shards, with and without concurrent writers — the shard-scaling
// experiment of EXPERIMENTS.md.
//
// Usage:
//
//	sibench              # full suite, plain-text tables
//	sibench -quick       # smaller sizes
//	sibench -markdown    # markdown tables
//	sibench -only F1a    # one experiment
//	sibench -serving     # prepared vs unprepared serving throughput
//	sibench -serving -shards 4   # ... over the sharded backend
//	sibench -shardscale  # throughput vs shard count under parallel clients
//	sibench -limit 1     # early-exit serving: cursor WithLimit(n) vs full drain on Q1
//	sibench -flat        # commit-flatness gate: write p50 at |D|≈30k vs ≈150k
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/backendtest"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "run smaller instances")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	only := flag.String("only", "", "run a single experiment by id (T1, F1a, F1b, F1c, X4.4, X4.5, X5.4, X6.1, XGLT)")
	serving := flag.Bool("serving", false, "benchmark the serving API instead (prepared vs unprepared)")
	shards := flag.Int("shards", 0, "with -serving: run over the hash-sharded backend with this many shards (0 = single-node)")
	shardScale := flag.Bool("shardscale", false, "benchmark concurrent-client throughput vs shard count (1/2/4/8) at fixed |D|")
	clients := flag.Int("clients", 8, "with -shardscale: number of parallel query clients")
	writers := flag.Int("writers", 2, "with -shardscale: number of concurrent update writers in the mixed workload")
	limit := flag.Int("limit", 0, "benchmark early-exit serving instead: Rows WithLimit(n)/First vs a full Exec drain on Q1")
	reorder := flag.Bool("reorder", false, "benchmark cost-ordered vs analysis-order physical plans (reads/op and µs/op on Q1-Q5); exits nonzero if reordering regresses reads")
	useStats := flag.Bool("stats", false, "with -reorder: let the optimizer refine ordering with live backend cardinality statistics")
	live := flag.Bool("live", false, "benchmark the commit-and-notify write path instead: maintenance reads per commit for watched Q2 queries vs full re-execution; exits nonzero unless maintenance is strictly cheaper")
	flat := flag.Bool("flat", false, "run the commit-flatness gate instead: replay the mixed commit stream at |D|≈30k and |D|≈150k and compare median commit wall latency; exits nonzero if the large instance's p50 exceeds flat-ratio times the small one's")
	flatRatio := flag.Float64("flat-ratio", 2.0, "with -flat: maximum allowed large/small commit-p50 ratio")
	watchers := flag.Int("watchers", 32, "with -live: number of live Q2 subscriptions")
	serve := flag.Bool("serve", false, "load-test the HTTP serving tier instead: concurrent streaming clients vs a committer and a live watcher; reports q/s, p50/p99, admission rejects; exits nonzero on a bound violation, misclassified rejection, or goroutine leak")
	tenants := flag.Int("tenants", 4, "with -serve: number of tenants the clients are spread over (tenant t0 gets a tight read budget)")
	serveDur := flag.Duration("duration", 3*time.Second, "with -serve: load duration (quick caps it at 1s)")
	metricsz := flag.Bool("metricsz", false, "smoke-test the /metricsz exporter instead: drive a live server, scrape it over HTTP, and strict-parse the exposition; exits nonzero on any malformed line, missing family, or miscounted traffic")
	views := flag.Bool("views", false, "benchmark materialized-view serving instead: reads/op base-plan vs view-plan, rescued-query rate, and transactional maintenance cost across a commit stream; exits nonzero if the optimizer picks a strictly worse view plan, a rescued query exceeds its bound, or a view-served answer diverges")
	flag.Parse()

	if *metricsz {
		if err := metricsSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "sibench: metricsz: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *views {
		if err := viewsBench(*quick, *shards); err != nil {
			fmt.Fprintf(os.Stderr, "sibench: views: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serve {
		if err := serveBench(*quick, *shards, *clients, *tenants, *serveDur); err != nil {
			fmt.Fprintf(os.Stderr, "sibench: serve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *flat {
		if err := flatBench(*quick, *shards, *flatRatio); err != nil {
			fmt.Fprintf(os.Stderr, "sibench: flat: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *live {
		if err := liveBench(*quick, *shards, *watchers); err != nil {
			fmt.Fprintf(os.Stderr, "sibench: live: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *reorder {
		if err := reorderBench(*quick, *shards, *useStats); err != nil {
			fmt.Fprintf(os.Stderr, "sibench: reorder: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *limit > 0 {
		if err := limitBench(*quick, *shards, *limit); err != nil {
			fmt.Fprintf(os.Stderr, "sibench: limit: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *shardScale {
		if err := shardScaleBench(*quick, *clients, *writers); err != nil {
			fmt.Fprintf(os.Stderr, "sibench: shardscale: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serving {
		if err := servingBench(*quick, *shards); err != nil {
			fmt.Fprintf(os.Stderr, "sibench: serving: %v\n", err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	ran := 0
	for _, e := range bench.All() {
		if *only != "" && e.ID != *only {
			continue
		}
		tables, err := e.Run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sibench: experiment %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *markdown {
				fmt.Println(t.Markdown())
			} else {
				fmt.Println(t.String())
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "sibench: no experiment matched %q\n", *only)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "sibench: %d experiments in %s\n", ran, time.Since(start).Round(time.Millisecond))
}

// reorderBench compares, per experiment query, the analysis-emitted
// conjunct order against the cost-based optimizer's order: average
// TupleReads per call (the paper's currency) and wall-clock per call,
// over the same binding sequence on the same backend. Q1–Q4 are the
// conformance queries (their chase plans are already greedily ordered,
// so the columns match); Q5 — restaurants visited by non-NYC friends —
// is the showcase whose safe negation keeps the chase away: the
// optimizer hoists the ¬person emptiness probe ahead of the ×N visit
// expansion. The run exits nonzero if any query's cost-ordered plan
// reads more than its analysis order in total.
func reorderBench(quick bool, shards int, useStats bool) error {
	persons := 10000
	iters := 4000
	if quick {
		persons, iters = 2000, 1500
	}
	cfg := workload.DefaultConfig()
	cfg.Persons = persons
	cfg.Seed = 7
	db, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	var st store.Backend
	if shards > 0 {
		st, err = shard.Open(db, workload.Access(cfg), shards)
	} else {
		st, err = store.Open(db, workload.Access(cfg))
	}
	if err != nil {
		return err
	}
	engOff := core.NewEngine(st)
	engOff.SetOptimizer(core.OptimizerOff)
	engOn := core.NewEngine(st)
	mode := core.OptimizerOn
	if useStats {
		mode = core.OptimizerStats
	}
	engOn.SetOptimizer(mode)
	ctx := context.Background()

	queries := []struct {
		name string
		src  string
		ctrl []string
		bind func(i int) query.Bindings
	}{
		{"Q1", workload.Q1Src, []string{"p"}, bindP(persons)},
		{"Q2", workload.Q2Src, []string{"p"}, bindP(persons)},
		{"Q3", workload.Q3Src, []string{"p", "yy"}, func(i int) query.Bindings {
			return query.Bindings{"p": relation.Int(int64(i % persons)), "yy": relation.Int(int64(cfg.Years[i%len(cfg.Years)]))}
		}},
		{"Q4", backendtest.Q4Src, []string{"p"}, bindP(persons)},
		{"Q5", backendtest.Q5Src, []string{"p"}, bindP(persons)},
	}

	backend := "single-node"
	if shards > 0 {
		backend = fmt.Sprintf("%d-shard", shards)
	}
	fmt.Printf("conjunct reordering: |D| = %d (%s backend), optimizer %s, %d executions per cell:\n\n",
		st.Size(), backend, mode, iters)
	fmt.Printf("%-5s %16s %16s %12s %12s %10s\n", "query", "reads/op (anal.)", "reads/op (cost)", "µs/op (anal.)", "µs/op (cost)", "Δreads")
	regressed := false
	improvedAny := false
	for _, qd := range queries {
		q, err := parseServing(qd.src)
		if err != nil {
			return err
		}
		prepOff, err := engOff.Prepare(q, query.NewVarSet(qd.ctrl...))
		if err != nil {
			return fmt.Errorf("%s: %w", qd.name, err)
		}
		prepOn, err := engOn.Prepare(q, query.NewVarSet(qd.ctrl...))
		if err != nil {
			return fmt.Errorf("%s: %w", qd.name, err)
		}
		measure := func(prep *core.PreparedQuery) (reads int64, d time.Duration, err error) {
			start := time.Now()
			for i := 0; i < iters; i++ {
				ans, err := prep.Exec(ctx, qd.bind(i), core.WithoutTrace())
				if err != nil {
					return 0, 0, err
				}
				reads += ans.Cost.TupleReads
			}
			return reads, time.Since(start), nil
		}
		rOff, tOff, err := measure(prepOff)
		if err != nil {
			return fmt.Errorf("%s analysis order: %w", qd.name, err)
		}
		rOn, tOn, err := measure(prepOn)
		if err != nil {
			return fmt.Errorf("%s cost order: %w", qd.name, err)
		}
		delta := float64(rOn-rOff) / float64(iters)
		fmt.Printf("%-5s %16.2f %16.2f %12.1f %12.1f %+10.2f\n",
			qd.name,
			float64(rOff)/float64(iters), float64(rOn)/float64(iters),
			float64(tOff.Microseconds())/float64(iters), float64(tOn.Microseconds())/float64(iters),
			delta)
		if rOn > rOff {
			regressed = true
		}
		if rOn < rOff {
			improvedAny = true
		}
	}
	if regressed {
		return fmt.Errorf("a cost-ordered plan read more than its analysis order")
	}
	if improvedAny {
		fmt.Printf("\ncost-ordered plans never read more; at least one query reads strictly less than analysis order.\n")
	} else {
		fmt.Printf("\nno query improved — every analysis-emitted order was already optimal on this workload.\n")
	}
	return nil
}

func bindP(persons int) func(i int) query.Bindings {
	return func(i int) query.Bindings {
		return query.Bindings{"p": relation.Int(int64(i % persons))}
	}
}

// parseServing parses a serving query in either syntax.
func parseServing(src string) (*query.Query, error) {
	if cq, err := parser.ParseCQ(src); err == nil {
		return cq.Query()
	}
	return parser.ParseQuery(src)
}

// servingBench measures the serving lifecycle on the Q1 workload: the
// same repeated-execution loop with (a) the plan cache disabled — every
// call pays the controllability analysis, (b) the transparent engine
// cache, and (c) an explicitly prepared query. With shards > 0 the loops
// run over the hash-sharded backend instead of the single-node store.
func servingBench(quick bool, shards int) error {
	persons := 10000
	iters := 20000
	if quick {
		persons, iters = 2000, 4000
	}
	cfg := workload.DefaultConfig()
	cfg.Persons = persons
	cfg.Seed = 7
	db, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	var st store.Backend
	if shards > 0 {
		st, err = shard.Open(db, workload.Access(cfg), shards)
	} else {
		st, err = store.Open(db, workload.Access(cfg))
	}
	if err != nil {
		return err
	}
	q, err := parser.ParseQuery(workload.Q1Src)
	if err != nil {
		return err
	}
	ctx := context.Background()
	bind := func(i int) query.Bindings {
		return query.Bindings{"p": relation.Int(int64(i % 1000))}
	}

	run := func(name string, once func(i int) error) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := once(i); err != nil {
				return 0, fmt.Errorf("%s: %w", name, err)
			}
		}
		return time.Since(start), nil
	}

	uncached := core.NewEngine(st)
	uncached.SetPlanCacheSize(0)
	tU, err := run("unprepared", func(i int) error {
		_, err := uncached.AnswerContext(ctx, q, bind(i))
		return err
	})
	if err != nil {
		return err
	}
	cached := core.NewEngine(st)
	tC, err := run("plan-cache", func(i int) error {
		_, err := cached.AnswerContext(ctx, q, bind(i))
		return err
	})
	if err != nil {
		return err
	}
	prep, err := core.NewEngine(st).Prepare(q, query.NewVarSet("p"))
	if err != nil {
		return err
	}
	tP, err := run("prepared", func(i int) error {
		_, err := prep.Exec(ctx, bind(i))
		return err
	})
	if err != nil {
		return err
	}
	tH, err := run("prepared-notrace", func(i int) error {
		_, err := prep.Exec(ctx, bind(i), core.WithoutTrace())
		return err
	})
	if err != nil {
		return err
	}

	backend := "single-node"
	if shards > 0 {
		backend = fmt.Sprintf("%d-shard", shards)
	}
	fmt.Printf("serving Q1 on |D| = %d (%s backend), %d executions each:\n\n", st.Size(), backend, iters)
	fmt.Printf("%-34s %12s %14s\n", "mode", "per call", "vs unprepared")
	for _, r := range []struct {
		name string
		d    time.Duration
	}{
		{"unprepared (analysis per call)", tU},
		{"Answer via engine plan cache", tC},
		{"PreparedQuery.Exec", tP},
		{"PreparedQuery.Exec WithoutTrace", tH},
	} {
		per := r.d / time.Duration(iters)
		fmt.Printf("%-34s %12s %13.1fx\n", r.name, per, float64(tU)/float64(r.d))
	}
	cs := cached.PlanCacheStats()
	fmt.Printf("\nplan cache (Answer path): %d hits, %d misses, %d evictions — %.2f%% of calls skipped re-analysis\n",
		cs.Hits, cs.Misses, cs.Evictions, 100*float64(cs.Hits)/float64(cs.Hits+cs.Misses))
	return nil
}

// limitBench measures what early termination buys on the serving path:
// the same prepared Q1 executed over the same binding sequence (a) as a
// full Exec drain, (b) as a cursor stopped after n answers (WithLimit),
// and (c) as First (n = 1). Reads are the paper's currency, so the table
// reports average TupleReads per call next to wall-clock — the limited
// cursor must charge strictly fewer reads than the drain whenever the
// answer set is larger than n.
func limitBench(quick bool, shards, n int) error {
	persons := 10000
	iters := 20000
	if quick {
		persons, iters = 2000, 4000
	}
	cfg := workload.DefaultConfig()
	cfg.Persons = persons
	cfg.Seed = 7
	db, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	var st store.Backend
	if shards > 0 {
		st, err = shard.Open(db, workload.Access(cfg), shards)
	} else {
		st, err = store.Open(db, workload.Access(cfg))
	}
	if err != nil {
		return err
	}
	q, err := parser.ParseQuery(workload.Q1Src)
	if err != nil {
		return err
	}
	prep, err := core.NewEngine(st).Prepare(q, query.NewVarSet("p"))
	if err != nil {
		return err
	}
	ctx := context.Background()
	bind := func(i int) query.Bindings {
		return query.Bindings{"p": relation.Int(int64(i % 1000))}
	}

	type row struct {
		name    string
		reads   int64
		answers int64
		d       time.Duration
	}
	measure := func(name string, once func(i int) (reads, answers int64, err error)) (row, error) {
		r := row{name: name}
		start := time.Now()
		for i := 0; i < iters; i++ {
			reads, answers, err := once(i)
			if err != nil {
				return r, fmt.Errorf("%s: %w", name, err)
			}
			r.reads += reads
			r.answers += answers
		}
		r.d = time.Since(start)
		return r, nil
	}

	full, err := measure("Exec (full drain)", func(i int) (int64, int64, error) {
		ans, err := prep.Exec(ctx, bind(i), core.WithoutTrace())
		if err != nil {
			return 0, 0, err
		}
		return ans.Cost.TupleReads, int64(ans.Tuples.Len()), nil
	})
	if err != nil {
		return err
	}
	limited, err := measure(fmt.Sprintf("Rows WithLimit(%d)", n), func(i int) (int64, int64, error) {
		rows, err := prep.Query(ctx, bind(i), core.WithoutTrace(), core.WithLimit(n))
		if err != nil {
			return 0, 0, err
		}
		defer rows.Close()
		answers := int64(0)
		for rows.Next() {
			answers++
		}
		if err := rows.Err(); err != nil {
			return 0, 0, err
		}
		return rows.Cost().TupleReads, answers, nil
	})
	if err != nil {
		return err
	}
	first, err := measure("First", func(i int) (int64, int64, error) {
		rows, err := prep.Query(ctx, bind(i), core.WithoutTrace(), core.WithLimit(1))
		if err != nil {
			return 0, 0, err
		}
		defer rows.Close()
		if rows.Next() {
			return rows.Cost().TupleReads, 1, nil
		}
		return rows.Cost().TupleReads, 0, rows.Err()
	})
	if err != nil {
		return err
	}

	backend := "single-node"
	if shards > 0 {
		backend = fmt.Sprintf("%d-shard", shards)
	}
	fmt.Printf("early-exit serving Q1 on |D| = %d (%s backend), %d executions each:\n\n", st.Size(), backend, iters)
	fmt.Printf("%-22s %14s %14s %12s\n", "mode", "avg reads/call", "avg answers", "per call")
	for _, r := range []row{full, limited, first} {
		fmt.Printf("%-22s %14.2f %14.2f %12s\n",
			r.name,
			float64(r.reads)/float64(iters),
			float64(r.answers)/float64(iters),
			(r.d / time.Duration(iters)).Round(time.Nanosecond))
	}
	if limited.answers == full.answers {
		// n never truncated anything: every drain fit under the limit, so
		// reads are legitimately equal — not a failure of early exit.
		fmt.Printf("\nlimit %d was never reached (every answer set fit under it); lower -limit to measure early exit.\n", n)
		return nil
	}
	if limited.reads >= full.reads {
		return fmt.Errorf("early exit saved nothing: limited %d reads vs full %d", limited.reads, full.reads)
	}
	fmt.Printf("\nWithLimit(%d) read %.1f%% of the full drain's tuples; the unread fetches were never issued.\n",
		n, 100*float64(limited.reads)/float64(full.reads))
	return nil
}

// shardScaleBench holds |D|, the client count and the total work fixed
// and varies the backend: single-node, then 1/2/4/8 hash shards. Every
// configuration performs the same fixed workload — each of `clients`
// goroutines executes a fixed count of prepared Q1 calls — first
// read-only, then mixed with `writers` goroutines concurrently applying
// (and undoing) a fixed count of 48-tuple single-entity friend batches.
// Wall-clock time for the whole batch gives queries/second; each
// measurement is the best of `rounds` runs (the usual guard against
// scheduler noise). The mixed column is where per-shard write locks pay
// off: on the single node every ApplyUpdate excludes all readers; on n
// shards it excludes only the readers of one shard.
func shardScaleBench(quick bool, clients, writers int) error {
	persons := 20000
	perClient := 1500
	perWriter := 400
	rounds := 4
	if quick {
		persons, perClient, perWriter, rounds = 4000, 400, 100, 2
	}
	cfg := workload.DefaultConfig()
	cfg.Persons = persons
	cfg.Seed = 7
	data, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	acc := workload.Access(cfg)
	q, err := parser.ParseQuery(workload.Q1Src)
	if err != nil {
		return err
	}

	type cfgRow struct {
		name   string
		open   func() (store.Backend, error)
		qps    float64
		mixQPS float64
	}
	rows := []*cfgRow{
		{name: "single-node", open: func() (store.Backend, error) { return store.Open(data.Clone(), acc) }},
	}
	for _, n := range []int{1, 2, 4, 8} {
		n := n
		rows = append(rows, &cfgRow{
			name: fmt.Sprintf("%d shard(s)", n),
			open: func() (store.Backend, error) { return shard.Open(data.Clone(), acc, n) },
		})
	}

	totalQueries := clients * perClient
	for _, row := range rows {
		b, err := row.open()
		if err != nil {
			return err
		}
		prep, err := core.NewEngine(b).Prepare(q, query.NewVarSet("p"))
		if err != nil {
			return err
		}
		// firstErr keeps the first failure from any goroutine. A mutex (not
		// atomic.Value) because failing goroutines may carry different
		// concrete error types.
		var errMu sync.Mutex
		var firstErr error
		fail := func(err error) {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
		}
		serve := func(withWriters bool) time.Duration {
			var wg sync.WaitGroup
			start := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					ctx := context.Background()
					for i := 0; i < perClient; i++ {
						p := relation.Int(int64((c*7919 + i) % persons))
						if _, err := prep.Exec(ctx, query.Bindings{"p": p}, core.WithoutTrace()); err != nil {
							fail(err)
							return
						}
					}
				}(c)
			}
			if withWriters {
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						// Each writer commits through its own engine over the
						// shared backend — independent serving processes, so
						// commits do not serialize behind one engine's commit
						// lock and the storage layer's per-shard write locks
						// stay the contended resource being measured.
						weng := core.NewEngine(b)
						ctx := context.Background()
						base := int64(1_000_000 + 10_000*w)
						for i := 0; i < perWriter; i++ {
							// One entity's friend list per batch: routes to one
							// shard, the write shape per-shard locks help most;
							// 48 tuples holds the write lock long enough that a
							// global lock visibly stalls readers while staying
							// within the schema's MaxFriends=50 bound.
							u := relation.NewUpdate()
							id := base + int64(i%1000)
							for k := int64(0); k < 48; k++ {
								u.Insert("friend", relation.Tuple{relation.Int(id), relation.Int(k)})
							}
							if _, err := weng.Commit(ctx, u); err != nil {
								fail(err)
								return
							}
							if _, err := weng.Commit(ctx, u.Inverse()); err != nil {
								fail(err)
								return
							}
						}
					}(w)
				}
			}
			wg.Wait()
			return time.Since(start)
		}
		// Fail fast between rounds: a failing backend should not burn the
		// remaining rounds and the whole mixed phase before reporting.
		best := func(withWriters bool) (float64, error) {
			bestT := time.Duration(0)
			for r := 0; r < rounds; r++ {
				t := serve(withWriters)
				errMu.Lock()
				err := firstErr
				errMu.Unlock()
				if err != nil {
					return 0, err
				}
				if bestT == 0 || t < bestT {
					bestT = t
				}
			}
			return float64(totalQueries) / bestT.Seconds(), nil
		}
		if row.qps, err = best(false); err != nil {
			return fmt.Errorf("%s: %w", row.name, err)
		}
		if row.mixQPS, err = best(true); err != nil {
			return fmt.Errorf("%s: %w", row.name, err)
		}
	}

	fmt.Printf("shard scaling: Q1 serving at |D| = %d, %d clients x %d queries, %d writers x %d update batches, GOMAXPROCS=%d\n\n",
		data.Size(), clients, perClient, writers, 2*perWriter, runtime.GOMAXPROCS(0))
	fmt.Printf("%-14s %14s %20s\n", "backend", "read-only q/s", "mixed q/s (writers)")
	for _, row := range rows {
		fmt.Printf("%-14s %14.0f %20.0f\n", row.name, row.qps, row.mixQPS)
	}
	return nil
}

// liveBench measures what the commit-and-notify write path buys over the
// serve-by-re-execution strategy: W live Q2 subscriptions (A-rated NYC
// restaurants visited by p's NYC friends) are watched while a randomized
// mixed insert/delete commit stream runs through Engine.Commit. For every
// commit the bench accumulates (a) the maintenance reads actually charged
// to the watchers — each bounded by its N-derived per-delta bound — and
// (b) the reads W fresh prepared re-executions of the same queries cost
// on the post-commit state, i.e. what keeping W readers fresh would pay
// without incremental maintenance. It reports commits/s for the pipeline
// itself (re-execution probes excluded) and exits nonzero if maintenance
// is not strictly cheaper per commit, or if any live snapshot ever
// diverges from a fresh execution.
func liveBench(quick bool, shards, watchers int) error {
	persons := 10000 // |D| ≈ 151k, the reordering experiment's size
	commits := 1200
	if quick {
		persons, commits = 2000, 400
	}
	cfg := workload.DefaultConfig()
	cfg.Persons = persons
	cfg.Seed = 7
	db, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	// The commit stream is generated against the initial state, before the
	// backend takes ownership of db.
	var hot []int64
	for i := 0; i < watchers; i++ {
		hot = append(hot, int64((i*7)%persons))
	}
	stream := workload.MixedCommits(db, cfg, commits, hot, 99)

	var st store.Backend
	if shards > 0 {
		st, err = shard.Open(db, workload.Access(cfg), shards)
	} else {
		st, err = store.Open(db, workload.Access(cfg))
	}
	if err != nil {
		return err
	}
	eng := core.NewEngine(st)
	q, err := parseServing(workload.Q2Src)
	if err != nil {
		return err
	}
	prep, err := eng.Prepare(q, query.NewVarSet("p"))
	if err != nil {
		return err
	}
	ctx := context.Background()
	type sub struct {
		fixed query.Bindings
		l     *core.Live
	}
	subs := make([]sub, 0, watchers)
	for _, p := range hot {
		fixed := query.Bindings{"p": relation.Int(p)}
		l, err := prep.Watch(ctx, fixed)
		if err != nil {
			return fmt.Errorf("watch p=%d: %w", p, err)
		}
		defer l.Close()
		subs = append(subs, sub{fixed: fixed, l: l})
	}

	var maintReads, reexecReads int64
	var commitTime time.Duration
	lath := obs.NewHistogram()
	for _, u := range stream {
		start := time.Now()
		res, err := eng.Commit(ctx, u)
		lat := time.Since(start)
		commitTime += lat
		lath.ObserveDuration(lat)
		if err != nil {
			return err
		}
		maintReads += res.Maintenance.TupleReads
		// The baseline: every watcher re-executes against the new state.
		for _, s := range subs {
			ans, err := prep.Exec(ctx, s.fixed, core.WithoutTrace())
			if err != nil {
				return err
			}
			reexecReads += ans.Cost.TupleReads
		}
	}

	// Exactness: every snapshot must equal a fresh execution, and every
	// delivered delta must have stayed within its bound.
	var deltas int
	var maxReads, maxBound int64
	for _, s := range subs {
		ans, err := prep.Exec(ctx, s.fixed)
		if err != nil {
			return err
		}
		if !s.l.Snapshot().Equal(ans.Tuples) {
			return fmt.Errorf("live snapshot for %v diverged from fresh execution", s.fixed)
		}
		s.l.Close()
		for d, err := range s.l.Deltas() {
			if err != nil {
				return err
			}
			if d.Cost.TupleReads > d.Bound {
				return fmt.Errorf("delta seq %d charged %d reads over its bound %d", d.Seq, d.Cost.TupleReads, d.Bound)
			}
			if d.Cost.TupleReads > maxReads {
				maxReads = d.Cost.TupleReads
			}
			if d.Bound > maxBound {
				maxBound = d.Bound
			}
			deltas++
		}
	}

	backend := "single-node"
	if shards > 0 {
		backend = fmt.Sprintf("%d-shard", shards)
	}
	n := float64(len(stream))
	fmt.Printf("live Q2 maintenance on |D| = %d (%s backend): %d commits, %d watched subscriptions\n\n",
		st.Size(), backend, len(stream), len(subs))
	fmt.Printf("%-38s %14s\n", "", "per commit")
	fmt.Printf("%-38s %14.1f\n", "maintenance reads (all watchers)", float64(maintReads)/n)
	fmt.Printf("%-38s %14.1f\n", "full re-execution reads (baseline)", float64(reexecReads)/n)
	fmt.Printf("%-38s %14s\n", "commit latency (incl. maintenance)", (commitTime / time.Duration(len(stream))).Round(time.Microsecond))
	fmt.Printf("%-38s %14s\n", "commit latency p50", lath.QuantileDuration(0.50).Round(time.Microsecond))
	fmt.Printf("%-38s %14s\n", "commit latency p99", lath.QuantileDuration(0.99).Round(time.Microsecond))
	fmt.Printf("%-38s %14.0f\n", "commits/s", n/commitTime.Seconds())
	fmt.Printf("\n%d deltas delivered; max per-delta reads %d, max bound %d — every snapshot ≡ fresh Exec\n",
		deltas, maxReads, maxBound)
	if maintReads >= reexecReads {
		return fmt.Errorf("maintenance (%d reads) is not strictly cheaper than re-execution (%d reads)", maintReads, reexecReads)
	}
	fmt.Printf("maintenance pays %.1f%% of the re-execution baseline per commit\n", 100*float64(maintReads)/float64(reexecReads))
	return nil
}
