// Command sibench runs the full experiment suite: the Table 1 validation
// tables, the Example 1.1 scaling series, and the per-theorem experiments
// (see DESIGN.md §3 for the index). With -markdown it emits the body of
// EXPERIMENTS.md. With -serving it instead benchmarks the serving API:
// per-call analysis vs the transparent plan cache vs a prepared query.
//
// Usage:
//
//	sibench            # full suite, plain-text tables
//	sibench -quick     # smaller sizes
//	sibench -markdown  # markdown tables
//	sibench -only F1a  # one experiment
//	sibench -serving   # prepared vs unprepared serving throughput
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "run smaller instances")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	only := flag.String("only", "", "run a single experiment by id (T1, F1a, F1b, F1c, X4.4, X4.5, X5.4, X6.1, XGLT)")
	serving := flag.Bool("serving", false, "benchmark the serving API instead (prepared vs unprepared)")
	flag.Parse()

	if *serving {
		if err := servingBench(*quick); err != nil {
			fmt.Fprintf(os.Stderr, "sibench: serving: %v\n", err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	ran := 0
	for _, e := range bench.All() {
		if *only != "" && e.ID != *only {
			continue
		}
		tables, err := e.Run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sibench: experiment %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *markdown {
				fmt.Println(t.Markdown())
			} else {
				fmt.Println(t.String())
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "sibench: no experiment matched %q\n", *only)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "sibench: %d experiments in %s\n", ran, time.Since(start).Round(time.Millisecond))
}

// servingBench measures the serving lifecycle on the Q1 workload: the
// same repeated-execution loop with (a) the plan cache disabled — every
// call pays the controllability analysis, (b) the transparent engine
// cache, and (c) an explicitly prepared query.
func servingBench(quick bool) error {
	persons := 10000
	iters := 20000
	if quick {
		persons, iters = 2000, 4000
	}
	cfg := workload.DefaultConfig()
	cfg.Persons = persons
	cfg.Seed = 7
	db, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	st, err := store.Open(db, workload.Access(cfg))
	if err != nil {
		return err
	}
	q, err := parser.ParseQuery(workload.Q1Src)
	if err != nil {
		return err
	}
	ctx := context.Background()
	bind := func(i int) query.Bindings {
		return query.Bindings{"p": relation.Int(int64(i % 1000))}
	}

	run := func(name string, once func(i int) error) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := once(i); err != nil {
				return 0, fmt.Errorf("%s: %w", name, err)
			}
		}
		return time.Since(start), nil
	}

	uncached := core.NewEngine(st)
	uncached.SetPlanCacheSize(0)
	tU, err := run("unprepared", func(i int) error {
		_, err := uncached.AnswerContext(ctx, q, bind(i))
		return err
	})
	if err != nil {
		return err
	}
	cached := core.NewEngine(st)
	tC, err := run("plan-cache", func(i int) error {
		_, err := cached.AnswerContext(ctx, q, bind(i))
		return err
	})
	if err != nil {
		return err
	}
	prep, err := core.NewEngine(st).Prepare(q, query.NewVarSet("p"))
	if err != nil {
		return err
	}
	tP, err := run("prepared", func(i int) error {
		_, err := prep.Exec(ctx, bind(i))
		return err
	})
	if err != nil {
		return err
	}
	tH, err := run("prepared-notrace", func(i int) error {
		_, err := prep.Exec(ctx, bind(i), core.WithoutTrace())
		return err
	})
	if err != nil {
		return err
	}

	fmt.Printf("serving Q1 on |D| = %d, %d executions each:\n\n", st.Size(), iters)
	fmt.Printf("%-34s %12s %14s\n", "mode", "per call", "vs unprepared")
	for _, r := range []struct {
		name string
		d    time.Duration
	}{
		{"unprepared (analysis per call)", tU},
		{"Answer via engine plan cache", tC},
		{"PreparedQuery.Exec", tP},
		{"PreparedQuery.Exec WithoutTrace", tH},
	} {
		per := r.d / time.Duration(iters)
		fmt.Printf("%-34s %12s %13.1fx\n", r.name, per, float64(tU)/float64(r.d))
	}
	return nil
}
