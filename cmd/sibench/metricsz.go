package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/store"
	"repro/internal/workload"
)

// metricsFamilies is the exporter's contract surface: every family the
// serving tier registers (the table in internal/server/metrics.go), with
// its TYPE. The smoke fails if the live scrape is missing any of them or
// disagrees on a type — so renaming a metric is a deliberate act here,
// not a silent dashboard break.
var metricsFamilies = map[string]obs.Kind{
	"si_query_latency_seconds":    obs.KindHistogram,
	"si_query_reads":              obs.KindHistogram,
	"si_queries_total":            obs.KindCounter,
	"si_admission_total":          obs.KindCounter,
	"si_admission_refund_reads":   obs.KindHistogram,
	"si_plan_cache_ops_total":     obs.KindGauge,
	"si_commits_total":            obs.KindCounter,
	"si_commit_phase_seconds":     obs.KindHistogram,
	"si_commit_maintenance_reads": obs.KindHistogram,
	"si_watch_delta_lag":          obs.KindHistogram,
	"si_watch_folded_total":       obs.KindCounter,
	"si_engine_size":              obs.KindGauge,
	"si_engine_commit_seq":        obs.KindGauge,
	"si_engine_watchers":          obs.KindGauge,
	"si_shard_lsn_spread":         obs.KindGauge,
}

// metricsSmoke is the metrics-smoke CI gate (-metricsz): it mounts the
// serving tier with a live registry on a real socket, drives every code
// path that records metrics — admitted queries, a typed bound rejection,
// commits, a live watch delta — then scrapes GET /metricsz over HTTP and
// holds the exposition to account:
//
//   - the body must survive the strict exposition parser (internal/obs
//     ParseText), which rejects orphan samples, malformed labels, and
//     non-monotone histogram buckets;
//   - every family in metricsFamilies must be present with its TYPE;
//   - the counters must reflect the traffic just driven (queries ok,
//     admission by outcome, commits, watch deltas).
func metricsSmoke() error {
	cfg := workload.DefaultConfig()
	cfg.Persons = 240
	cfg.Seed = 11
	data, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	b, err := store.Open(data, workload.Access(cfg))
	if err != nil {
		return err
	}
	eng := core.NewEngine(b)
	srv := server.NewServer(server.Config{
		Engine:   eng,
		Policies: map[string]server.TenantPolicy{"strict": {MaxBound: 1}},
		Metrics:  obs.NewRegistry(),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	ctx := context.Background()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(sctx)
		hs.Shutdown(sctx)
	}()

	// Traffic: queries that succeed, a rejection that is typed, commits
	// that run the pipeline, and a watch that delivers a delta.
	cl := client.New(base)
	prep, err := cl.Prepare(ctx, workload.Q1Src, "p")
	if err != nil {
		return err
	}
	const queries = 5
	for i := 0; i < queries; i++ {
		if _, _, err := prep.Exec(ctx, q1Bind(int64(i))); err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
	}
	strict := client.New(base, client.WithTenant("strict"))
	var adm *server.AdmissionError
	if _, err := strict.Prepare(ctx, workload.Q1Src, "p"); !errors.As(err, &adm) || adm.Reason != "bound" {
		return fmt.Errorf("strict tenant not rejected with a typed bound error: %w", err)
	}
	w, err := prep.Watch(ctx, q1Bind(1), false)
	if err != nil {
		return err
	}
	defer w.Close()
	const commits = 3
	for i := int64(0); i < commits; i++ {
		if _, err := cl.Commit(ctx, serveUpdate(i, int64(cfg.Persons))); err != nil {
			return fmt.Errorf("commit %d: %w", i, err)
		}
	}
	if _, err := w.Next(); err != nil {
		return fmt.Errorf("watch delta: %w", err)
	}

	// Scrape and verify.
	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metricsz: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		return fmt.Errorf("GET /metricsz content-type %q, want text exposition 0.0.4", ct)
	}
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		return fmt.Errorf("exposition failed strict parse: %w", err)
	}
	for name, kind := range metricsFamilies {
		f, ok := fams[name]
		if !ok {
			return fmt.Errorf("family %s missing from /metricsz", name)
		}
		if f.Type != kind {
			return fmt.Errorf("family %s has TYPE %s, want %s", name, f.Type, kind)
		}
	}

	// The counters must account for the traffic just driven.
	sum := func(name string, match map[string]string) float64 {
		var total float64
		for _, s := range fams[name].Samples {
			if strings.HasSuffix(s.Name, "_bucket") || strings.HasSuffix(s.Name, "_sum") {
				continue
			}
			ok := true
			for k, v := range match {
				if s.Labels[k] != v {
					ok = false
				}
			}
			if ok {
				total += s.Value
			}
		}
		return total
	}
	if got := sum("si_queries_total", map[string]string{"outcome": "ok"}); got < queries {
		return fmt.Errorf("si_queries_total{outcome=ok} = %v, want >= %d", got, queries)
	}
	if got := sum("si_admission_total", map[string]string{"outcome": "rejected_bound"}); got < 1 {
		return fmt.Errorf("si_admission_total{outcome=rejected_bound} = %v, want >= 1", got)
	}
	if got := sum("si_commits_total", nil); got != commits {
		return fmt.Errorf("si_commits_total = %v, want %d", got, commits)
	}
	// Histogram conformance on a family we know has data: count == queries.
	if got := sum("si_query_latency_seconds", nil); got < queries {
		return fmt.Errorf("si_query_latency_seconds count = %v, want >= %d", got, queries)
	}
	if got := sum("si_engine_commit_seq", nil); got != commits {
		return fmt.Errorf("si_engine_commit_seq = %v, want %d", got, commits)
	}
	fmt.Printf("metricsz: %d families parsed strictly; %d queries, %d commits, 1 rejection, 1 watch delta all accounted for\n",
		len(fams), queries, commits)
	return nil
}
