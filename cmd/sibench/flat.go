package main

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/workload"
)

// flatBench is the commit-flatness gate: the write-path analogue of the
// "reads independent of |D|" guarantee the paper gives queries. It replays
// the same-shape mixed commit stream (randomized inserts/deletes through
// Engine.Commit, live Q2 watchers attached) at a small and a large
// instance — |D| ≈ 30k and |D| ≈ 150k on the default workload — and
// compares the median commit wall latency. With O(1) swap-remove deletion
// the cost of a commit depends on |ΔD| and the maintenance bounds, not on
// |D|, so the medians must stay within flat-ratio of each other; the run
// exits nonzero when they do not. Maintenance reads per commit are printed
// at both scales as a cross-check that flatness was not bought by reading
// more.
//
// Medians are computed exactly from the recorded latency slice — the
// exporter histogram's bucket resolution (~19%) is too coarse to gate a
// ratio on. p99 is reported for context but not gated: tail latencies on a
// shared box are scheduler noise, the median is the signal.
func flatBench(quick bool, shards int, maxRatio float64) error {
	commits := 800
	watchers := 16
	if quick {
		commits = 250
	}
	small, err := flatRun(2000, commits, watchers, shards)
	if err != nil {
		return fmt.Errorf("small instance: %w", err)
	}
	large, err := flatRun(10000, commits, watchers, shards)
	if err != nil {
		return fmt.Errorf("large instance: %w", err)
	}

	backend := "single-node"
	if shards > 0 {
		backend = fmt.Sprintf("%d-shard", shards)
	}
	fmt.Printf("commit flatness (%s backend): %d mixed commits, %d live Q2 watchers, per instance size\n\n",
		backend, commits, watchers)
	fmt.Printf("%-12s %12s %12s %12s %16s\n", "|D|", "p50", "p90", "p99", "maint reads/ci")
	for _, r := range []flatResult{small, large} {
		fmt.Printf("%-12d %12s %12s %12s %16.1f\n",
			r.size,
			r.p50.Round(time.Microsecond), r.p90.Round(time.Microsecond), r.p99.Round(time.Microsecond),
			r.maintPerCommit)
	}
	ratio := float64(large.p50) / float64(small.p50)
	fmt.Printf("\np50 ratio (|D|=%d vs |D|=%d): %.2fx (gate: ≤ %.2fx)\n", large.size, small.size, ratio, maxRatio)

	// Escape hatch: when the large instance's median is already tiny in
	// absolute terms, the ratio is dominated by fixed per-commit overhead
	// and timer noise, not by any |D|-dependent term.
	if large.p50 <= 500*time.Microsecond {
		fmt.Printf("large-instance p50 %s ≤ 500µs: flat in absolute terms, ratio not gated\n", large.p50.Round(time.Microsecond))
		return nil
	}
	if ratio > maxRatio {
		return fmt.Errorf("commit p50 grew %.2fx from |D|=%d to |D|=%d (gate %.2fx): write latency is not flat",
			ratio, small.size, large.size, maxRatio)
	}
	fmt.Printf("commit latency is flat: a %.1fx larger instance pays %.2fx at the median\n",
		float64(large.size)/float64(small.size), ratio)
	return nil
}

// flatResult is one instance size's measurement.
type flatResult struct {
	size           int
	p50, p90, p99  time.Duration
	maintPerCommit float64
}

// flatRun replays the mixed commit stream against a fresh instance with
// `persons` entities and returns exact latency quantiles over the
// per-commit wall times.
func flatRun(persons, commits, watchers, shards int) (flatResult, error) {
	cfg := workload.DefaultConfig()
	cfg.Persons = persons
	cfg.Seed = 7
	db, err := workload.Generate(cfg)
	if err != nil {
		return flatResult{}, err
	}
	var hot []int64
	for i := 0; i < watchers; i++ {
		hot = append(hot, int64((i*7)%persons))
	}
	stream := workload.MixedCommits(db, cfg, commits, hot, 99)

	var st store.Backend
	if shards > 0 {
		st, err = shard.Open(db, workload.Access(cfg), shards)
	} else {
		st, err = store.Open(db, workload.Access(cfg))
	}
	if err != nil {
		return flatResult{}, err
	}
	eng := core.NewEngine(st)
	q, err := parseServing(workload.Q2Src)
	if err != nil {
		return flatResult{}, err
	}
	prep, err := eng.Prepare(q, query.NewVarSet("p"))
	if err != nil {
		return flatResult{}, err
	}
	ctx := context.Background()
	for _, p := range hot {
		l, err := prep.Watch(ctx, query.Bindings{"p": relation.Int(p)})
		if err != nil {
			return flatResult{}, fmt.Errorf("watch p=%d: %w", p, err)
		}
		defer l.Close()
	}

	lats := make([]time.Duration, 0, len(stream))
	var maintReads int64
	for _, u := range stream {
		start := time.Now()
		res, err := eng.Commit(ctx, u)
		lat := time.Since(start)
		if err != nil {
			return flatResult{}, err
		}
		lats = append(lats, lat)
		maintReads += res.Maintenance.TupleReads
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return flatResult{
		size:           st.Size(),
		p50:            exactQuantile(lats, 0.50),
		p90:            exactQuantile(lats, 0.90),
		p99:            exactQuantile(lats, 0.99),
		maintPerCommit: float64(maintReads) / float64(len(stream)),
	}, nil
}

// exactQuantile reads quantile q from an already-sorted latency slice
// (nearest-rank on the sorted data; no interpolation, no bucketing).
func exactQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)-1) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
