package main

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/access"
	"repro/internal/backendtest"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/workload"
)

// viewsBench measures what materialized views buy the serving path
// (Section 6). Two views are created through Engine.CreateView:
//
//   - VNYC pre-joins dated visits with the NYC person filter; the
//     planner serves Q7 from it because the view plan's static bound
//     strictly undercuts the base plan's.
//   - VFol inverts the friendship relation and *rescues* Q6, which is
//     not controllable over the base relations at all (Theorem 6.1).
//
// The bench reports reads/op for the base plan vs the view plan on Q7,
// reads/op for the rescued Q6, and the rescued-query rate over the
// serving pack — before and after a randomized mixed commit stream that
// the engine maintains the views through. It exits nonzero if the
// optimizer picks a view plan with a strictly worse bound than the base
// plan, if any rescued execution exceeds its static bound, or if any
// view-served answer diverges from the base plan (Q7) or a naive
// full-scan oracle (Q6).
func viewsBench(quick bool, shards int) error {
	persons, commits, ops := 10000, 600, 64
	if quick {
		persons, commits, ops = 2000, 200, 32
	}
	cfg := workload.DefaultConfig()
	cfg.Persons = persons
	cfg.Seed = 7
	db, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	hot := make([]int64, ops)
	for i := range hot {
		hot[i] = int64((i * 7) % persons)
	}
	// Generated against the initial state, before the backend owns db.
	stream := workload.MixedCommits(db, cfg, commits, hot, 99)

	var st store.Backend
	if shards > 0 {
		st, err = shard.Open(db, workload.Access(cfg), shards)
	} else {
		st, err = store.Open(db, workload.Access(cfg))
	}
	if err != nil {
		return err
	}
	// One engine serves and commits; a second, view-free engine over the
	// same backend keeps the base plan available as the per-execution
	// correctness and cost baseline.
	eng, engBase := core.NewEngine(st), core.NewEngine(st)
	ctx := context.Background()

	q6, err := parseServing(backendtest.Q6Src)
	if err != nil {
		return err
	}
	q7, err := parseServing(backendtest.Q7Src)
	if err != nil {
		return err
	}

	// Base service: Q6 has no bounded plan at all; Q7 does.
	if _, err := eng.Prepare(q6, query.NewVarSet("p")); !errors.Is(err, core.ErrNotControllable) {
		return fmt.Errorf("Q6 over base relations: got %w, want ErrNotControllable", err)
	}
	prep7Base, err := engBase.Prepare(q7, query.NewVarSet("p"))
	if err != nil {
		return err
	}

	if _, err := eng.CreateView(mustParseCQ(backendtest.VFolSrc),
		access.Plain("VFol", []string{"p"}, cfg.MaxFriends+64, 1)); err != nil {
		return err
	}
	if _, err := eng.CreateView(mustParseCQ(backendtest.VNYCSrc)); err != nil {
		return err
	}
	prep7View, err := eng.Prepare(q7, query.NewVarSet("p"))
	if err != nil {
		return err
	}
	if len(prep7View.Plan().Views) == 0 {
		return fmt.Errorf("Q7: optimizer did not pick the view plan (views %v)", prep7View.Plan().Views)
	}
	if vb, bb := prep7View.Plan().Bound.Reads, prep7Base.Plan().Bound.Reads; vb > bb {
		return fmt.Errorf("Q7: view plan bound %d strictly worse than base plan bound %d", vb, bb)
	}
	prep6, err := eng.Prepare(q6, query.NewVarSet("p"))
	if err != nil {
		return fmt.Errorf("Q6 with views: %w", err)
	}
	if !prep6.Plan().Rescued {
		return fmt.Errorf("Q6 plan not marked rescued")
	}

	// measure executes prep over the hot bindings, returning total reads.
	// Each view-served Q7 answer is checked against the base plan; a
	// sample of rescued Q6 answers against the naive full-scan oracle.
	measure := func(prep *core.PreparedQuery, check func(i int, fixed query.Bindings, ans *core.Answer) error) (int64, time.Duration, error) {
		var reads int64
		start := time.Now()
		for i, p := range hot {
			fixed := query.Bindings{"p": relation.Int(p)}
			ans, err := prep.Exec(ctx, fixed, core.WithoutTrace())
			if err != nil {
				return 0, 0, err
			}
			if ans.Cost.TupleReads > prep.Plan().Bound.Reads {
				return 0, 0, fmt.Errorf("%s p=%d: %d reads exceed static bound %d",
					prep.Stmt().Name, p, ans.Cost.TupleReads, prep.Plan().Bound.Reads)
			}
			reads += ans.Cost.TupleReads
			if check != nil {
				if err := check(i, fixed, ans); err != nil {
					return 0, 0, err
				}
			}
		}
		return reads, time.Since(start), nil
	}
	checkQ7 := func(i int, fixed query.Bindings, ans *core.Answer) error {
		base, err := prep7Base.Exec(ctx, fixed, core.WithoutTrace())
		if err != nil {
			return err
		}
		if !ans.Tuples.Equal(base.Tuples) {
			return fmt.Errorf("Q7 p=%v: view plan diverged from base plan", fixed["p"])
		}
		return nil
	}
	checkQ6 := func(i int, fixed query.Bindings, ans *core.Answer) error {
		if i >= 8 {
			return nil // the full-scan oracle is O(|D|) per binding
		}
		naive, err := eval.Answers(eval.NewStoreSource(st, &store.ExecStats{}), q6, fixed)
		if err != nil {
			return err
		}
		if !ans.Tuples.Equal(naive) {
			return fmt.Errorf("Q6 p=%v: rescued plan diverged from naive oracle", fixed["p"])
		}
		return nil
	}

	type row struct {
		label string
		bound int64
		reads [2]float64 // before / after the commit stream
	}
	rows := []*row{
		{label: "Q7 base plan", bound: prep7Base.Plan().Bound.Reads},
		{label: fmt.Sprintf("Q7 view plan %v", prep7View.Plan().Views), bound: prep7View.Plan().Bound.Reads},
		{label: fmt.Sprintf("Q6 rescued %v", prep6.Plan().Views), bound: prep6.Plan().Bound.Reads},
	}
	phase := func(slot int) error {
		if r, _, err := measure(prep7Base, nil); err != nil {
			return err
		} else {
			rows[0].reads[slot] = float64(r) / float64(ops)
		}
		if r, _, err := measure(prep7View, checkQ7); err != nil {
			return err
		} else {
			rows[1].reads[slot] = float64(r) / float64(ops)
		}
		if r, _, err := measure(prep6, checkQ6); err != nil {
			return err
		} else {
			rows[2].reads[slot] = float64(r) / float64(ops)
		}
		return nil
	}
	if err := phase(0); err != nil {
		return err
	}

	// The commit stream: views maintained transactionally inside each
	// Engine.Commit, charged like watcher maintenance.
	var maintained int
	var viewReads int64
	var commitTime time.Duration
	for _, u := range stream {
		start := time.Now()
		res, err := eng.Commit(ctx, u)
		commitTime += time.Since(start)
		if err != nil {
			return err
		}
		maintained += res.ViewsMaintained
		viewReads += res.ViewReads
	}
	if err := phase(1); err != nil {
		return err
	}

	// Rescued rate over the serving pack: how many of the pack's queries
	// only answer through a view rewriting.
	pack := []string{workload.Q1Src, workload.Q2Src, backendtest.Q6Src, backendtest.Q7Src}
	rescued := 0
	for _, src := range pack {
		q, err := parseServing(src)
		if err != nil {
			return err
		}
		prep, err := eng.Prepare(q, query.NewVarSet("p"))
		if err != nil {
			return fmt.Errorf("%s: %w", q.Name, err)
		}
		if prep.Plan().Rescued {
			rescued++
		}
	}

	backend := "single-node"
	if shards > 0 {
		backend = fmt.Sprintf("%d-shard", shards)
	}
	fmt.Printf("materialized-view serving on |D| = %d (%s backend): %d ops per plan, %d commits\n\n",
		st.Size(), backend, ops, len(stream))
	fmt.Printf("%-28s %12s %18s %18s\n", "plan", "bound", "reads/op (fresh)", "reads/op (after)")
	for _, r := range rows {
		fmt.Printf("%-28s %12d %18.1f %18.1f\n", r.label, r.bound, r.reads[0], r.reads[1])
	}
	fmt.Printf("\ncommit stream: %d view maintenances, %d maintenance reads (%.1f/commit), %s/commit\n",
		maintained, viewReads, float64(viewReads)/float64(len(stream)),
		(commitTime / time.Duration(len(stream))).Round(time.Microsecond))
	fmt.Printf("rescued-query rate over the %d-query pack: %d/%d (%.0f%%) — every rescued execution stayed within its bound\n",
		len(pack), rescued, len(pack), 100*float64(rescued)/float64(len(pack)))
	return nil
}

func mustParseCQ(src string) *query.CQ {
	cq, err := parser.ParseCQ(src)
	if err != nil {
		panic(err)
	}
	return cq
}
