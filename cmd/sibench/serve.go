package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/workload"
)

// serveBench is the serving-tier load harness (-serve): it mounts the
// HTTP tier on a real socket, hammers it with concurrent streaming
// clients spread over tenants — one of which gets a deliberately tight
// windowed read budget so admission control is exercised under load —
// races a committer and a live watcher against the readers, and reports
// q/s, latency percentiles, and admission reject counts.
//
// It exits nonzero (the serve-smoke CI gate) if any of the serving
// tier's contracts broke:
//
//   - a served query's measured reads exceeded the bound it was admitted
//     under (scale independence violated over the wire);
//   - a request failed with anything other than a typed admission
//     rejection (a misclassified or untyped error);
//   - a deterministic SLA probe was NOT rejected, or was rejected with
//     the wrong type;
//   - goroutines leaked through drain + shutdown.
func serveBench(quick bool, shards, clients, tenants int, dur time.Duration) error {
	cfg := workload.DefaultConfig()
	if quick {
		cfg.Persons = 240
		cfg.Seed = 11
		if dur > time.Second {
			dur = time.Second
		}
	}
	data, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	acc := workload.Access(cfg)
	var b store.Backend
	if shards > 0 {
		b, err = shard.Open(data, acc, shards)
	} else {
		b, err = store.Open(data, acc)
	}
	if err != nil {
		return err
	}
	eng := core.NewEngine(b)

	// Size tenant t0's budget off Q1's static bound M: room for ~4 full
	// entitlements per 25ms window, so a saturating client sees real
	// budget rejections while the other tenants run unlimited.
	q, err := parseServing(workload.Q1Src)
	if err != nil {
		return err
	}
	prep0, err := eng.Prepare(q, query.NewVarSet("p"))
	if err != nil {
		return err
	}
	boundM := prep0.Plan().Bound.Reads
	if tenants < 1 {
		tenants = 1
	}
	policies := map[string]server.TenantPolicy{
		"t0":     {ReadBudget: 4 * boundM, Window: 25 * time.Millisecond},
		"strict": {MaxBound: 1},
	}
	reg := obs.NewRegistry()
	srv := server.NewServer(server.Config{Engine: eng, Policies: policies, Metrics: reg})

	baseline := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	ctx := context.Background()

	backend := "single-node"
	if shards > 0 {
		backend = fmt.Sprintf("%d-shard", shards)
	}
	fmt.Printf("serve: %s backend, |D| = %d, Q1 bound M = %d reads, %d clients over %d tenants for %s\n",
		backend, b.Size(), boundM, clients, tenants, dur)

	// Per-client results, merged after the run. Latencies go straight into
	// a shared histogram (obs.Histogram is concurrency-safe), which also
	// provides the p50/p99 at reporting time.
	type result struct {
		ok            int64
		rejBound      int64
		rejBudget     int64
		rejConc       int64
		boundViolated int64
		badErrs       []error
	}
	results := make([]result, clients)
	lath := obs.NewHistogram()
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res := &results[c]
			tenant := fmt.Sprintf("t%d", c%tenants)
			cl := client.New(base, client.WithTenant(tenant))
			prep, err := cl.Prepare(ctx, workload.Q1Src, "p")
			if err != nil {
				res.badErrs = append(res.badErrs, fmt.Errorf("client %d prepare: %w", c, err))
				return
			}
			for i := 0; time.Now().Before(deadline); i++ {
				fixed := q1Bind(int64((c*131 + i*7) % cfg.Persons))
				start := time.Now()
				_, stats, err := prep.Exec(ctx, fixed)
				lat := time.Since(start)
				if err != nil {
					var adm *server.AdmissionError
					if errors.As(err, &adm) {
						switch adm.Reason {
						case "bound":
							res.rejBound++
						case "budget":
							res.rejBudget++
						case "concurrency":
							res.rejConc++
						}
						continue
					}
					res.badErrs = append(res.badErrs, fmt.Errorf("client %d (%s) query %d: %w", c, tenant, i, err))
					return
				}
				lath.ObserveDuration(lat)
				res.ok++
				if stats.Reads > stats.Bound {
					res.boundViolated++
				}
			}
		}(c)
	}

	// One committer and one live watcher race the readers: the serving
	// tier must hold its contracts with writes and SSE in flight.
	var commitErr, watchErr error
	var commits int64
	wg.Add(2)
	go func() {
		defer wg.Done()
		cl := client.New(base)
		for i := int64(0); time.Now().Before(deadline); i++ {
			u := serveUpdate(i, int64(cfg.Persons))
			if _, err := cl.Commit(ctx, u); err != nil {
				commitErr = fmt.Errorf("commit %d: %w", i, err)
				return
			}
			commits++
			time.Sleep(2 * time.Millisecond)
		}
	}()
	watchDeltas := 0
	watchFolded := 0
	go func() {
		defer wg.Done()
		cl := client.New(base)
		prep, err := cl.Prepare(ctx, workload.Q1Src, "p")
		if err != nil {
			watchErr = err
			return
		}
		w, err := prep.Watch(ctx, q1Bind(1), false)
		if err != nil {
			watchErr = err
			return
		}
		defer w.Close()
		wctx, cancel := context.WithDeadline(ctx, deadline)
		defer cancel()
		done := make(chan struct{})
		go func() { <-wctx.Done(); w.Close(); close(done) }()
		for {
			d, err := w.Next()
			if err != nil {
				break // EOF/closed — expected at deadline or drain
			}
			watchDeltas++
			watchFolded += d.Folded
			if d.Reads > d.Bound {
				watchErr = fmt.Errorf("watch delta seq %d charged %d reads over bound %d", d.Seq, d.Reads, d.Bound)
			}
		}
		<-done
	}()
	wg.Wait()

	// Deterministic SLA probe: the strict tenant (MaxBound 1) MUST be
	// rejected, and with the typed admission error — anything else is a
	// misclassified rejection.
	strict := client.New(base, client.WithTenant("strict"))
	_, strictErr := strict.Prepare(ctx, workload.Q1Src, "p")
	var strictAdm *server.AdmissionError
	if strictErr == nil {
		return fmt.Errorf("strict tenant (MaxBound 1) was admitted for a bound-%d plan", boundM)
	}
	if !errors.As(strictErr, &strictAdm) || strictAdm.Reason != "bound" {
		return fmt.Errorf("strict tenant rejected with the wrong type: %w", strictErr)
	}

	status, err := client.New(base).Status(ctx)
	if err != nil {
		return err
	}

	// Drain and shut down before judging goroutines.
	drainCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		return err
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		return err
	}
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}

	// Merge and report.
	var ok, rejBound, rejBudget, rejConc, boundViolated int64
	var badErrs []error
	for i := range results {
		r := &results[i]
		ok += r.ok
		rejBound += r.rejBound
		rejBudget += r.rejBudget
		rejConc += r.rejConc
		boundViolated += r.boundViolated
		badErrs = append(badErrs, r.badErrs...)
	}
	rejected := rejBound + rejBudget + rejConc + 1 // +1: the strict probe
	fmt.Printf("serve: %d queries ok (%.0f q/s), p50 %s, p99 %s\n",
		ok, float64(ok)/dur.Seconds(),
		lath.QuantileDuration(0.50).Round(time.Microsecond), lath.QuantileDuration(0.99).Round(time.Microsecond))
	fmt.Printf("serve: admission rejected %d (bound %d, budget %d, concurrency %d), %d commits, %d watch deltas (%d folded commits)\n",
		rejected, rejBound+1, rejBudget, rejConc, commits, watchDeltas, watchFolded)
	fmt.Printf("serve: engine after load: size %d, commit seq %d, plan cache %d entries (%d hits / %d misses), %d watchers\n",
		status.Engine.Size, status.Engine.CommitSeq, status.Engine.PlanCacheLen,
		status.Engine.PlanCache.Hits, status.Engine.PlanCache.Misses, status.Engine.Watchers)
	for name, ts := range status.Tenants {
		fmt.Printf("serve:   tenant %-8s admitted %5d, rejected %d/%d/%d, measured %d reads\n",
			name, ts.Admitted, ts.RejectedBound, ts.RejectedBudget, ts.RejectedConcurrency, ts.MeasuredReads)
	}

	// Contract verdicts.
	if boundViolated > 0 {
		return fmt.Errorf("%d served queries exceeded their admitted bound", boundViolated)
	}
	if len(badErrs) > 0 {
		return fmt.Errorf("%d requests failed outside the admission taxonomy; first: %w", len(badErrs), badErrs[0])
	}
	if commitErr != nil {
		return commitErr
	}
	if watchErr != nil {
		return watchErr
	}
	if ok == 0 {
		return errors.New("no queries completed")
	}
	// Goroutine leak check: after drain + shutdown everything the tier
	// spawned must be gone (allow slack for runtime/netpoll churn).
	leakDeadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		} else if time.Now().After(leakDeadline) {
			return fmt.Errorf("goroutine leak: %d running after drain, baseline %d", n, baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Println("serve: all served queries within bound, rejections typed, no goroutine leak")
	return nil
}

// q1Bind binds Q1's controlled person id.
func q1Bind(p int64) query.Bindings { return query.Bindings{"p": relation.Int(p)} }

// serveUpdate builds the i-th committer update: a new person in NYC and
// a friend edge from a rotating existing person, all ids disjoint from
// the generated workload.
func serveUpdate(i, persons int64) *relation.Update {
	u := relation.NewUpdate()
	id := 900_000 + i
	u.Insert("person", relation.Tuple{relation.Int(id), relation.Str(fmt.Sprintf("load-%d", i)), relation.Str("NYC")})
	u.Insert("friend", relation.Tuple{relation.Int(i % persons), relation.Int(id)})
	return u
}
