// Command sivet checks the project's own invariants — the ones the
// compiler and staticcheck cannot see: the ExecStats charging
// discipline that reads ≤ M rests on (chargedreads), documented lock
// ownership (lockguard), the errors.Is-able error taxonomy (typederr),
// and the snake_case/json.Number wire contract (wirejson).
//
// Usage:
//
//	sivet [-only a,b] [-list] [dir | ./...]
//
// sivet loads the whole module containing the target directory (a
// trailing "./..." is accepted and ignored: the module is always
// checked as a unit), runs the analyzers, and prints file:line:col
// diagnostics. Exit status: 0 clean, 1 findings, 2 load failure.
//
// Findings are waived only by an explicit, reasoned directive:
//
//	//sivet:ignore <analyzer> -- <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sivet [-only a,b] [-list] [dir | ./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := byName[name]
			if a == nil {
				fmt.Fprintf(os.Stderr, "sivet: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	dir := "."
	if arg := flag.Arg(0); arg != "" && arg != "./..." {
		dir = strings.TrimSuffix(arg, "/...")
	}

	fset, pkgs, err := lint.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sivet: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(fset, pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sivet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
