// Command sirun answers a query over a generated or CSV-loaded database
// both ways — bounded (scale-independent) and naive — and reports the
// answers, the measured tuple accesses, the witness set D_Q, and the
// static bound, demonstrating Theorem 4.2 on real data.
//
// Usage:
//
//	sirun -data data/ -query "Q1(p, name) := exists id (friend(p, id) and person(id, name, 'NYC'))" -fix "p=7"
//	sirun -persons 10000 -query ... -fix "p=7"         # generate instead of loading
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	dataDir := flag.String("data", "", "directory with catalog.txt and per-relation CSVs (from sigen)")
	persons := flag.Int("persons", 5000, "generate a social graph of this size when -data is not given")
	seed := flag.Int64("seed", 1, "generation seed")
	querySrc := flag.String("query", workload.Q1Src, "query text")
	fix := flag.String("fix", "p=7", "fixed variable bindings, e.g. \"p=7,city='NYC'\"")
	naive := flag.Bool("naive", true, "also run the naive baseline")
	flag.Parse()

	var st *store.DB
	var err error
	if *dataDir != "" {
		st, err = loadData(*dataDir)
	} else {
		st, err = generate(*persons, *seed)
	}
	if err != nil {
		fatal(err)
	}
	q, err := parser.ParseQuery(*querySrc)
	if err != nil {
		fatal(fmt.Errorf("query: %w", err))
	}
	fixed, err := parseBindings(*fix)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("database: |D| = %d tuples\n", st.Size())
	fmt.Printf("query: %s\n", q)
	fmt.Printf("fixed: %s\n\n", *fix)

	eng := core.NewEngine(st)
	st.ResetCounters()
	start := time.Now()
	ans, err := eng.Answer(q, fixed)
	if err != nil {
		fatal(err)
	}
	boundedTime := time.Since(start)
	fmt.Printf("bounded evaluation: %d answers in %s\n", ans.Tuples.Len(), boundedTime.Round(time.Microsecond))
	fmt.Printf("  measured: %s\n", ans.Cost)
	fmt.Printf("  |D_Q| = %d distinct base tuples (per relation: %v)\n", ans.DQ.Distinct(), ans.DQ.PerRelation())
	fmt.Printf("  static bound: %s\n\n", ans.Plan.Bound)
	fmt.Print(ans.Plan.Describe())

	for i, t := range ans.Tuples.Tuples() {
		if i == 10 {
			fmt.Printf("  ... (%d more)\n", ans.Tuples.Len()-10)
			break
		}
		fmt.Printf("  %s%s\n", strings.Join(ans.RemainingHead, ","), t)
	}

	if *naive {
		st.ResetCounters()
		start = time.Now()
		res, err := eval.Answers(eval.StoreSource{DB: st}, q, fixed)
		if err != nil {
			fatal(err)
		}
		naiveTime := time.Since(start)
		c := st.Counters()
		fmt.Printf("\nnaive evaluation: %d answers in %s\n", res.Len(), naiveTime.Round(time.Microsecond))
		fmt.Printf("  measured: %s\n", c)
		if !res.Equal(ans.Tuples) {
			fatal(fmt.Errorf("ANSWER MISMATCH between bounded and naive evaluation"))
		}
		fmt.Println("  answers match the bounded evaluation ✓")
	}
}

func generate(persons int, seed int64) (*store.DB, error) {
	cfg := workload.DefaultConfig()
	cfg.Persons = persons
	cfg.Seed = seed
	db, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return store.Open(db, workload.Access(cfg))
}

func loadData(dir string) (*store.DB, error) {
	catText, err := os.ReadFile(filepath.Join(dir, "catalog.txt"))
	if err != nil {
		return nil, err
	}
	cat, err := parser.ParseCatalog(string(catText))
	if err != nil {
		return nil, err
	}
	db := relation.NewDatabase(cat.Relational)
	for _, name := range cat.Relational.Names() {
		f, err := os.Open(filepath.Join(dir, name+".csv"))
		if err != nil {
			return nil, err
		}
		err = relation.ReadCSV(f, db.Rel(name))
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	st, err := store.Open(db, cat.Access)
	if err != nil {
		return nil, err
	}
	if err := st.Conforms(); err != nil {
		return nil, fmt.Errorf("data does not conform to its access schema: %w", err)
	}
	return st, nil
}

func parseBindings(s string) (query.Bindings, error) {
	out := query.Bindings{}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad binding %q (want var=value)", part)
		}
		out[strings.TrimSpace(kv[0])] = relation.ParseValue(strings.TrimSpace(kv[1]))
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sirun:", err)
	os.Exit(1)
}
