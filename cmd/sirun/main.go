// Command sirun answers a query over a generated or CSV-loaded database
// both ways — bounded (scale-independent) and naive — and reports the
// answers, the measured tuple accesses, the witness set D_Q, and the
// static bound, demonstrating Theorem 4.2 on real data.
//
// It drives the prepared-query serving API: the query is prepared once
// (analysis + plan compilation) and executed under a context, optionally
// with a runtime read budget (-max-reads), a deadline (-timeout), or a
// naive fallback when the query is not controllable (-fallback).
//
// Usage:
//
//	sirun -data data/ -query "Q1(p, name) := exists id (friend(p, id) and person(id, name, 'NYC'))" -fix "p=7"
//	sirun -persons 10000 -query ... -fix "p=7"         # generate instead of loading
//	sirun -query ... -fix "p=7" -max-reads 1000 -timeout 5s
//	sirun -query ... -fix "p=7" -limit 3               # stream the first 3 answers and stop reading
//	sirun -query ... -fix "p=7" -explain               # print the compiled physical plan (EXPLAIN)
//	sirun -query ... -fix "p=7" -analyze               # EXPLAIN ANALYZE: static bound vs measured per operator
//	sirun -query ... -fix "p=7" -explain -no-optimizer # ... the analysis-order plan instead
//	sirun -query ... -fix "p=7" -watch                 # live query: stream answer deltas until Ctrl-C
//
// With -limit N the cursor API is used instead: answers stream out as the
// bounded plan pulls them, and evaluation — including its tuple reads and
// budget consumption — stops after the N-th answer.
//
// With -watch the query is subscribed through the live-query API
// (PreparedQuery.Watch): a background writer commits a randomized mixed
// insert/delete stream through Engine.Commit and every answer delta
// prints as it is maintained — with the bounded per-commit maintenance
// cost next to it — until -watch-commits is exhausted or the process is
// interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	dataDir := flag.String("data", "", "directory with catalog.txt and per-relation CSVs (from sigen)")
	persons := flag.Int("persons", 5000, "generate a social graph of this size when -data is not given")
	seed := flag.Int64("seed", 1, "generation seed")
	querySrc := flag.String("query", workload.Q1Src, "query text")
	fix := flag.String("fix", "p=7", "fixed variable bindings, e.g. \"p=7,city='NYC'\"")
	naive := flag.Bool("naive", true, "also run the naive baseline")
	maxReads := flag.Int64("max-reads", 0, "runtime tuple-read budget (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "evaluation deadline (0 = none)")
	fallback := flag.Bool("fallback", false, "fall back to naive evaluation when not controllable")
	shards := flag.Int("shards", 0, "serve from a hash-sharded store with this many shards (0 = single-node)")
	limit := flag.Int("limit", 0, "stream at most this many answers through the cursor API and stop charging reads (0 = drain everything)")
	explain := flag.Bool("explain", false, "print the compiled physical plan (operator tree, chosen order, static cost) before executing")
	analyze := flag.Bool("analyze", false, "EXPLAIN ANALYZE: execute with per-operator runtime tracing and print static bound vs measured rows/reads/wall per operator")
	noOpt := flag.Bool("no-optimizer", false, "compile the analysis-emitted order instead of the cost-based plan")
	watch := flag.Bool("watch", false, "watch the query live instead: a background writer commits a randomized update stream and the maintained answer deltas print until interrupted (generated data only)")
	watchCommits := flag.Int("watch-commits", 0, "with -watch: stop after this many commits (0 = until interrupted)")
	watchInterval := flag.Duration("watch-interval", 100*time.Millisecond, "with -watch: delay between commits")
	var viewDefs []string
	flag.Func("view", "materialize this CQ as an engine-maintained view before preparing (repeatable); the plan may then serve from the view, and -explain/-analyze name it with its maintenance freshness", func(s string) error {
		viewDefs = append(viewDefs, s)
		return nil
	})
	flag.Parse()

	var db *relation.Database
	var acc *access.Schema
	var err error
	if *dataDir != "" {
		db, acc, err = loadData(*dataDir)
	} else {
		db, acc, err = generate(*persons, *seed)
	}
	if err != nil {
		fatal(err)
	}
	var st store.Backend
	if *shards > 0 {
		sh, err := shard.Open(db, acc, *shards)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("backend: %d shards, routing %v, sizes %v\n", sh.NumShards(), routeSummary(sh), sh.ShardSizes())
		st = sh
	} else {
		st, err = store.Open(db, acc)
		if err != nil {
			fatal(err)
		}
	}
	q, err := parser.ParseQuery(*querySrc)
	if err != nil {
		fatal(fmt.Errorf("query: %w", err))
	}
	fixed, err := parseBindings(*fix)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("database: |D| = %d tuples\n", st.Size())
	fmt.Printf("query: %s\n", q)
	fmt.Printf("fixed: %s\n\n", *fix)

	eng := core.NewEngine(st)
	if *noOpt {
		eng.SetOptimizer(core.OptimizerOff)
	}
	for _, src := range viewDefs {
		def, err := parser.ParseCQ(src)
		if err != nil {
			fatal(fmt.Errorf("-view %q: %w", src, err))
		}
		info, err := eng.CreateView(def)
		if err != nil {
			fatal(fmt.Errorf("-view %q: %w", src, err))
		}
		fmt.Printf("view: %s materialized (%d rows, entries %v)\n", info.Name, info.Rows, info.Entries)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var opts []core.ExecOption
	if *maxReads > 0 {
		opts = append(opts, core.WithMaxReads(*maxReads))
	}
	if *fallback {
		opts = append(opts, core.WithNaiveFallback())
	}

	if *watch {
		if *dataDir != "" {
			fatal(fmt.Errorf("-watch needs the generated social workload (drop -data): the background writer mutates that schema"))
		}
		if *maxReads > 0 || *fallback {
			fatal(fmt.Errorf("-max-reads and -fallback configure one-shot executions; a -watch subscription's maintenance is budgeted at its own per-delta bound"))
		}
		cfg := workload.DefaultConfig()
		cfg.Persons = *persons
		cfg.Seed = *seed
		if err := watchQuery(ctx, eng, q, fixed, *fix, cfg, *watchCommits, *watchInterval, *explain); err != nil {
			fatal(err)
		}
		return
	}

	if *limit > 0 {
		if err := streamAnswers(ctx, eng, q, fixed, *limit, *explain, opts); err != nil {
			fatal(err)
		}
		return
	}

	start := time.Now()
	prep, err := eng.Prepare(q, fixed.Vars())
	prepTime := time.Since(start)
	prepLabel := "prepared"
	var ans *core.Answer
	if err == nil {
		if *explain {
			fmt.Println(prep.Explain())
		}
		start = time.Now()
		if *analyze {
			var rendered string
			rendered, ans, err = prep.Analyze(ctx, fixed, opts...)
			if err == nil {
				fmt.Println(rendered)
			}
		} else {
			ans, err = prep.Exec(ctx, fixed, opts...)
		}
	} else if *fallback && errors.Is(err, core.ErrNotControllable) {
		fmt.Printf("not controllable for %s; falling back to naive evaluation\n\n", fixed.Vars())
		prepLabel = "analysis (not controllable)"
		start = time.Now()
		ans, err = eng.AnswerContext(ctx, q, fixed, opts...)
	}
	switch {
	case errors.Is(err, core.ErrNotControllable):
		fatal(fmt.Errorf("%w\n  (re-run with -fallback to answer it naively anyway)", err))
	case errors.Is(err, core.ErrBudgetExceeded):
		fatal(fmt.Errorf("%w\n  (raise -max-reads or tighten the access schema)", err))
	case errors.Is(err, core.ErrCanceled):
		fatal(fmt.Errorf("%w\n  (raise -timeout)", err))
	case err != nil:
		fatal(err)
	}
	execTime := time.Since(start)
	fmt.Printf("%s in %s, executed in %s: %d answers\n",
		prepLabel, prepTime.Round(time.Microsecond), execTime.Round(time.Microsecond), ans.Tuples.Len())
	fmt.Printf("  measured: %s\n", ans.Cost)
	if ans.DQ != nil {
		fmt.Printf("  |D_Q| = %d distinct base tuples (per relation: %v)\n", ans.DQ.Distinct(), ans.DQ.PerRelation())
	}
	if ans.Plan != nil {
		fmt.Printf("  static bound: %s\n\n", ans.Plan.Bound)
		fmt.Print(ans.Plan.Describe())
	} else {
		fmt.Println("  (naive fallback: no bounded plan)")
	}

	for i, t := range ans.Tuples.Tuples() {
		if i == 10 {
			fmt.Printf("  ... (%d more)\n", ans.Tuples.Len()-10)
			break
		}
		fmt.Printf("  %s%s\n", strings.Join(ans.RemainingHead, ","), t)
	}

	if *naive {
		es := &store.ExecStats{}
		start = time.Now()
		res, err := eval.Answers(eval.NewStoreSource(st, es), q, fixed)
		if err != nil {
			fatal(err)
		}
		naiveTime := time.Since(start)
		fmt.Printf("\nnaive evaluation: %d answers in %s\n", res.Len(), naiveTime.Round(time.Microsecond))
		fmt.Printf("  measured: %s\n", es.Counters)
		if !res.Equal(ans.Tuples) {
			fatal(fmt.Errorf("ANSWER MISMATCH between bounded and naive evaluation"))
		}
		fmt.Println("  answers match the bounded evaluation ✓")
	}
}

// streamAnswers drives the cursor API: answers print the moment the plan
// produces them, with the cumulative measured reads next to each, and
// evaluation stops — reads and all — after the limit.
func streamAnswers(ctx context.Context, eng *core.Engine, q *query.Query, fixed query.Bindings, limit int, explain bool, opts []core.ExecOption) error {
	start := time.Now()
	rows, err := eng.QueryContext(ctx, q, fixed, append(opts, core.WithLimit(limit))...)
	switch {
	case errors.Is(err, core.ErrNotControllable):
		return fmt.Errorf("%w\n  (re-run with -fallback to stream it naively anyway)", err)
	case err != nil:
		return err
	}
	defer rows.Close()
	if explain {
		fmt.Println(rows.Explain())
	}
	n := 0
	for rows.Next() {
		n++
		if n == 1 {
			fmt.Printf("first answer after %s:\n", time.Since(start).Round(time.Microsecond))
		}
		fmt.Printf("  %s%s   (cumulative reads: %d)\n",
			strings.Join(rows.Head(), ","), rows.Tuple(), rows.Cost().TupleReads)
	}
	switch err := rows.Err(); {
	case errors.Is(err, core.ErrBudgetExceeded):
		return fmt.Errorf("%w after %d answers\n  (raise -max-reads)", err, n)
	case errors.Is(err, core.ErrCanceled):
		return fmt.Errorf("%w after %d answers\n  (raise -timeout)", err, n)
	case err != nil:
		return err
	}
	if n >= limit {
		fmt.Printf("\n%d answer(s) in %s: limit %d reached — remaining evaluation, if any, was never run or charged\n",
			n, time.Since(start).Round(time.Microsecond), limit)
	} else {
		fmt.Printf("\n%d answer(s) in %s: the answer set ended before the limit (%d)\n",
			n, time.Since(start).Round(time.Microsecond), limit)
	}
	fmt.Printf("  measured: %s\n", rows.Cost())
	if dq := rows.DQ(); dq != nil {
		fmt.Printf("  |D_Q| = %d distinct base tuples (per relation: %v)\n", dq.Distinct(), dq.PerRelation())
	}
	if rows.Plan() != nil {
		fmt.Printf("  static full-drain bound: %s\n", rows.Plan().Bound)
	} else {
		fmt.Println("  (naive fallback: no bounded plan)")
	}
	return nil
}

// watchQuery drives the live-query API: the query is prepared and watched
// (re-execution fallback engaged automatically when it is not
// incrementally maintainable), a background writer commits a randomized
// mixed insert/delete stream through Engine.Commit, and every answer
// delta streams to stdout with its maintenance cost and bound — until the
// commit budget is exhausted or the process is interrupted (Ctrl-C).
func watchQuery(parent context.Context, eng *core.Engine, q *query.Query, fixed query.Bindings, fixStr string, cfg workload.Config, maxCommits int, interval time.Duration, explain bool) error {
	// The parent carries -timeout; the signal context layers Ctrl-C on top,
	// so either ends the watch.
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	defer stop()
	prep, err := eng.Prepare(q, fixed.Vars())
	if errors.Is(err, core.ErrNotControllable) {
		return fmt.Errorf("%w\n  (a live query needs a bounded plan for the fixed variables)", err)
	}
	if err != nil {
		return err
	}
	if explain {
		fmt.Println(prep.Explain())
	}
	live, err := prep.Watch(ctx, fixed, core.WithReexec())
	if err != nil {
		return err
	}
	defer live.Close()
	mode := "delta maintenance"
	switch {
	case !live.Maintained():
		mode = "bounded re-execution per commit"
	case !live.SupportsDeletions():
		mode = "delta maintenance; deletions resync by re-execution"
	}
	snap := live.Snapshot()
	fmt.Printf("watching %s for %s (%s); initial answers: %d\n", q.Name, fixStr, mode, snap.Len())
	for i, t := range snap.Tuples() {
		if i == 5 {
			fmt.Printf("  ... (%d more)\n", snap.Len()-5)
			break
		}
		fmt.Printf("  %s%s\n", strings.Join(live.Head(), ","), t)
	}
	fmt.Println("\ncommitting a randomized update stream; Ctrl-C to stop")

	// Background writer: batches of randomized commits generated against
	// the current state, biased toward the watched bindings.
	var hot []int64
	if p, ok := fixed["p"]; ok {
		hot = append(hot, p.AsInt())
	}
	writerDone := make(chan error, 1)
	go func() {
		// When the writer retires (budget spent, interrupted, or failed)
		// it closes the handle so the delta loop below drains and ends.
		defer live.Close()
		committed := 0
		batchSeed := cfg.Seed
		for {
			batch := workload.MixedCommits(eng.DB.CloneData(), cfg, 64, hot, batchSeed)
			batchSeed++
			for _, u := range batch {
				if maxCommits > 0 && committed >= maxCommits {
					writerDone <- nil
					return
				}
				select {
				case <-ctx.Done():
					writerDone <- nil
					return
				case <-time.After(interval):
				}
				if _, err := eng.Commit(ctx, u); err != nil {
					if errors.Is(err, core.ErrCanceled) {
						writerDone <- nil
					} else {
						writerDone <- err
					}
					return
				}
				committed++
			}
		}
	}()

	start := time.Now()
	deltas := 0
	var reads int64
	for d, err := range live.Deltas() {
		if err != nil {
			if errors.Is(err, core.ErrCanceled) {
				break // interrupted: clean shutdown
			}
			return err
		}
		deltas++
		reads += d.Cost.TupleReads
		for _, t := range d.Ins {
			fmt.Printf("  +%s%s   (commit %d: %d reads ≤ bound %d)\n",
				strings.Join(live.Head(), ","), t, d.Seq, d.Cost.TupleReads, d.Bound)
		}
		for _, t := range d.Del {
			fmt.Printf("  -%s%s   (commit %d: %d reads ≤ bound %d)\n",
				strings.Join(live.Head(), ","), t, d.Seq, d.Cost.TupleReads, d.Bound)
		}
		if len(d.Ins) == 0 && len(d.Del) == 0 {
			fmt.Printf("  =no answer change   (commit %d: %d reads ≤ bound %d)\n", d.Seq, d.Cost.TupleReads, d.Bound)
		}
	}
	if err := <-writerDone; err != nil {
		return fmt.Errorf("writer: %w", err)
	}
	live.Close()
	fmt.Printf("\n%d deltas in %s; %d maintenance reads total; final answers: %d (folded through commit %d)\n",
		deltas, time.Since(start).Round(time.Millisecond), reads, live.Snapshot().Len(), live.Seq())
	return nil
}

func generate(persons int, seed int64) (*relation.Database, *access.Schema, error) {
	cfg := workload.DefaultConfig()
	cfg.Persons = persons
	cfg.Seed = seed
	db, err := workload.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	return db, workload.Access(cfg), nil
}

func loadData(dir string) (*relation.Database, *access.Schema, error) {
	catText, err := os.ReadFile(filepath.Join(dir, "catalog.txt"))
	if err != nil {
		return nil, nil, err
	}
	cat, err := parser.ParseCatalog(string(catText))
	if err != nil {
		return nil, nil, err
	}
	db := relation.NewDatabase(cat.Relational)
	for _, name := range cat.Relational.Names() {
		f, err := os.Open(filepath.Join(dir, name+".csv"))
		if err != nil {
			return nil, nil, err
		}
		err = relation.ReadCSV(f, db.Rel(name))
		f.Close()
		if err != nil {
			return nil, nil, err
		}
	}
	if err := cat.Access.Conforms(db); err != nil {
		return nil, nil, fmt.Errorf("data does not conform to its access schema: %w", err)
	}
	return db, cat.Access, nil
}

// routeSummary maps each relation to its routing-key attributes.
func routeSummary(s *shard.Store) map[string][]string {
	out := make(map[string][]string, s.Schema().Len())
	for _, name := range s.Schema().Names() {
		out[name] = s.Route(name)
	}
	return out
}

func parseBindings(s string) (query.Bindings, error) {
	out := query.Bindings{}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad binding %q (want var=value)", part)
		}
		out[strings.TrimSpace(kv[0])] = relation.ParseValue(strings.TrimSpace(kv[1]))
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sirun:", err)
	os.Exit(1)
}
