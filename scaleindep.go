// Package scaleindep is a from-scratch Go implementation of
//
//	Wenfei Fan, Floris Geerts, Leonid Libkin.
//	"On Scale Independence for Querying Big Data." PODS 2014.
//
// It provides bounded (scale-independent) query evaluation under access
// schemas, the QDSI/QSI/∆QSI/VQSI decision procedures, incremental
// maintenance, and query rewriting using views — see DESIGN.md for the
// full inventory and EXPERIMENTS.md for the experiment index.
//
// This file is the public facade: a small, stable API over the internal
// engine. The serving flow is modeled on database/sql: prepare once (the
// worst-case exponential controllability analysis runs a single time and
// compiles a bounded plan), then execute many times with fresh bindings.
// A shared Engine is safe for concurrent use; every call gets its own
// measured cost and witness set.
//
//	cat, _ := scaleindep.ParseCatalog(catalogText)     // schema + access schema
//	db := relation data loaded or generated
//	eng, _ := scaleindep.NewEngine(db, cat.Access)
//	q, _ := scaleindep.ParseQuery("Q1(p, name) := ...")
//
//	prep, err := eng.Prepare(q, scaleindep.NewVarSet("p"))
//	if errors.Is(err, scaleindep.ErrNotControllable) {
//		// no bounded plan exists for this controlling set
//	}
//	ans, _ := prep.Exec(ctx, scaleindep.Bindings{"p": scaleindep.Int(42)},
//		scaleindep.WithMaxReads(10_000))   // runtime enforcement of the bound
//
// ans carries the answers, the executed bounded plan with its static cost
// bound, this call's access counters, and its witness set D_Q. The
// one-shot eng.Answer / eng.AnswerContext path remains and benefits
// transparently from an engine-level LRU plan cache. Failures wrap the
// typed sentinels ErrNotControllable, ErrBudgetExceeded, ErrCanceled,
// ErrUnboundHead and ErrNoRows for errors.Is dispatch.
//
// Results also stream: prep.Query / eng.QueryContext open a pull-based
// Rows cursor (Next/Tuple/Err/Close, or range over rows.All()) behind
// which the bounded plan executes lazily — store reads are charged only
// as answers are pulled, so WithLimit(n), First, Close or a canceled
// context stop the reads (and the WithMaxReads budget) the moment the
// caller is satisfied, and time-to-first-answer no longer depends on the
// size of the full answer set:
//
//	rows, _ := prep.Query(ctx, scaleindep.Bindings{"p": scaleindep.Int(42)},
//		scaleindep.WithLimit(10))
//	for t, err := range rows.All() {
//		// first answers arrive while later fetches are still unissued
//	}
//
// Behind Prepare sits a physical plan compiler: the controllability
// derivation lowers to an operator IR (index lookups, membership probes,
// pipelined nested-loop joins, emptiness probes, streaming unions, chase
// steps) and a cost-based optimizer reorders conjuncts greedy
// min-bound-first, re-selects access entries as variables become bound,
// and — on a sharded backend — pins each fetch's single-shard vs scatter
// routing at plan time. Inspect the result with prep.Explain() (also
// rows.Explain(), sirun -explain):
//
//	fmt.Print(prep.Explain())
//	// Q1 controlled by {p}
//	// physical plan (≤5000 candidates, ≤10000 reads, optimizer on)
//	// order: friend(p, id), person(id, name, 'NYC')
//	// ...operator tree with per-operator bounds...
//
// Static bounds always come from the access schema's N values; optimizer
// statistics (OptimizerStats) influence operator order only, so measured
// reads stay within the plan's bound M on every backend.
//
// The write path mirrors the read path's prepare-once discipline: mutate
// through the transactional eng.Commit rather than the raw backend, and
// subscribe to maintained answers with prep.Watch — the live-query
// counterpart of the paper's incremental scale independence result
// (ΔQSI): a bounded amount of maintenance work per commit keeps every
// subscription's answers exact, so readers never re-execute:
//
//	live, _ := prep.Watch(ctx, scaleindep.Bindings{"p": scaleindep.Int(42)})
//	defer live.Close()
//	go func() {
//	    for d, err := range live.Deltas() {   // blocks between commits
//	        // d.Ins / d.Del moved the answer set; d.Cost.TupleReads ≤ d.Bound
//	    }
//	}()
//	res, _ := eng.Commit(ctx, update)         // validate → apply → notify
//	_ = live.Snapshot()                       // current answers, any time
//
// Commit validates ΔD (failures wrap ErrInvalidUpdate and apply nothing),
// applies it through the backend's commit log (store.Versioned: one LSN
// per commit, per-shard LSNs plus a merged commit number on the sharded
// backend), assigns the engine-wide sequence number every Delta carries,
// and incrementally maintains each watched query through compiled
// maintenance plans — per-occurrence remainders ordered by the same
// cost-based optimizer, charged against an N-derived per-delta bound that
// is enforced as a runtime budget. Queries outside the maintainable class
// watch with WithReexec (bounded re-execution per commit); a watch of an
// unmaintainable query without it fails with ErrWatchNotMaintainable.
// Commit also tracks committed update volume per relation and re-costs
// cached OptimizerStats plans once drift crosses Engine.SetRecostThreshold.
//
// The same lifecycle is served over the network by internal/server and
// cmd/siserve: POST /prepare returns a plan handle with the static bound
// M and EXPLAIN, POST /query streams a Rows cursor as NDJSON, POST
// /commit applies ΔD transactionally, GET /watch streams live deltas
// over SSE, and GET /statusz serves Engine.Stats. Because M is known at
// prepare time, the tier runs success-tolerant admission control: a
// query whose bound exceeds its tenant's SLA (per-query ceiling,
// windowed read budget, concurrency cap) is rejected up front with a
// typed, machine-readable error carrying the bound. The Go client in
// internal/server/client keeps this facade's shape (Prepare / Query /
// Exec / Watch / Commit) so engine code ports to the wire unchanged.
package scaleindep

import (
	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/shard"
	"repro/internal/store"
)

// Re-exported data model types.
type (
	// Value is a typed data value (int or string).
	Value = relation.Value
	// Tuple is an ordered list of values.
	Tuple = relation.Tuple
	// Database is an instance of a relational schema.
	Database = relation.Database
	// Schema is a relational schema.
	Schema = relation.Schema
	// RelSchema describes one relation.
	RelSchema = relation.RelSchema
	// Update is a set of insertions and deletions ΔD = (∇D, ΔD).
	Update = relation.Update
	// AccessSchema is a set of access constraints (R, X[Y], N, T).
	AccessSchema = access.Schema
	// AccessEntry is one access constraint.
	AccessEntry = access.Entry
	// Query is a named FO query.
	Query = query.Query
	// CQ is a conjunctive query in rule form.
	CQ = query.CQ
	// Bindings assigns values to variables (the ā for x̄).
	Bindings = query.Bindings
	// VarSet is a set of variable names.
	VarSet = query.VarSet
	// Engine answers controlled queries boundedly over an instrumented
	// store. Safe for concurrent use.
	Engine = core.Engine
	// PreparedQuery is a query analyzed and compiled once, executable many
	// times concurrently (Engine.Prepare).
	PreparedQuery = core.PreparedQuery
	// ExecOption configures one execution: WithMaxReads, WithLimit,
	// WithoutTrace, WithNaiveFallback.
	ExecOption = core.ExecOption
	// Rows is a pull-based answer cursor (PreparedQuery.Query,
	// Engine.QueryContext): reads are charged only as answers are pulled.
	Rows = core.Rows
	// Answer is the result of one bounded evaluation: tuples, plan, this
	// call's measured cost and witness set D_Q.
	Answer = core.Answer
	// Derivation is a controllability proof, compilable to a bounded plan.
	Derivation = core.Derivation
	// ExecStats is a per-call execution context for direct store access.
	ExecStats = store.ExecStats
	// Catalog is a parsed schema + access schema.
	Catalog = parser.Catalog
	// Store is an instrumented single-node database with indices and
	// access counters: the reference Backend.
	Store = store.DB
	// Backend is the storage interface the engine runs against; OpenSharded
	// and Open both return one. Custom backends plug in via NewEngineOn.
	Backend = store.Backend
	// ShardedStore is a hash-partitioned Backend: n independent shards,
	// single-shard fast paths for key accesses, parallel scatter-gather
	// reads, per-shard write locks.
	ShardedStore = shard.Store
	// ShardOption configures OpenSharded (e.g. WithRoute).
	ShardOption = shard.Option
	// Counters are accumulated access-path work measurements.
	Counters = store.Counters
	// OptimizerMode selects how Prepare compiles derivations into physical
	// plans: OptimizerOff (analysis order), OptimizerOn (cost-based
	// reordering on access-constraint N bounds — the default), or
	// OptimizerStats (plus live backend cardinality statistics). Set it
	// per engine with Engine.SetOptimizer.
	OptimizerMode = core.OptimizerMode
	// PlanCacheStats are the engine plan cache's hit/miss/evict counters
	// (Engine.PlanCacheStats).
	PlanCacheStats = core.PlanCacheStats
	// CommitResult describes one applied commit: engine sequence number,
	// backend log sequence number, watchers notified and the bounded
	// maintenance work charged (Engine.Commit).
	CommitResult = core.CommitResult
	// Live is a live-query handle (PreparedQuery.Watch,
	// Engine.WatchContext): a maintained answer Snapshot plus a Deltas
	// stream of per-commit changes, safe for concurrent use.
	Live = core.Live
	// Delta is one commit's effect on a live query's answers, with the
	// maintenance cost charged and the N-derived bound it ran under.
	// Delta.Folded > 0 marks a coalesced delta: the net effect of several
	// consecutive commits, produced when a WithDeltaBuffer queue overflows.
	Delta = core.Delta
	// EngineStats is the engine's unified observability snapshot
	// (Engine.Stats): backend size, plan-cache counters, commit sequence
	// numbers, committed volume, live watcher population. The HTTP serving
	// tier exposes it at GET /statusz.
	EngineStats = core.EngineStats
	// WatchOption configures a subscription: WithReexec, WithDeltaBuffer.
	WatchOption = core.WatchOption
	// Maintainer is the standalone (non-subscribed, not concurrency-safe)
	// incremental maintenance engine behind Live (core.NewMaintainer).
	Maintainer = core.Maintainer
	// Versioned is implemented by backends keeping a commit-log sequence
	// number (both built-in backends do).
	Versioned = store.Versioned
)

// DefaultRecostThreshold is the default per-relation committed update
// volume after which cached stats-ordered plans are re-costed
// (Engine.SetRecostThreshold).
const DefaultRecostThreshold = core.DefaultRecostThreshold

// Plan optimizer modes for Engine.SetOptimizer.
const (
	// OptimizerOff compiles the analysis-emitted derivation 1:1.
	OptimizerOff = core.OptimizerOff
	// OptimizerOn (default) reorders conjuncts greedy min-bound-first and
	// re-selects access entries as variables become bound.
	OptimizerOn = core.OptimizerOn
	// OptimizerStats additionally refines ordering with live backend
	// cardinality statistics; static bounds still come from the access
	// schema.
	OptimizerStats = core.OptimizerStats
)

// Typed error taxonomy: every load-bearing failure of Prepare/Exec wraps
// one of these sentinels — dispatch with errors.Is.
var (
	// ErrNotControllable: no bounded plan exists for the requested
	// controlling set.
	ErrNotControllable = core.ErrNotControllable
	// ErrBudgetExceeded: a WithMaxReads runtime budget was crossed.
	ErrBudgetExceeded = core.ErrBudgetExceeded
	// ErrCanceled: the context was canceled or timed out mid-evaluation
	// (also matches context.Canceled / context.DeadlineExceeded).
	ErrCanceled = core.ErrCanceled
	// ErrUnboundHead: the plan left a head variable unbound.
	ErrUnboundHead = core.ErrUnboundHead
	// ErrNoRows: First found no answers.
	ErrNoRows = core.ErrNoRows
	// ErrWatchNotMaintainable: the query cannot be incrementally
	// maintained (watch with WithReexec for bounded re-execution instead).
	ErrWatchNotMaintainable = core.ErrWatchNotMaintainable
	// ErrInvalidUpdate: Engine.Commit rejected ΔD before applying anything.
	ErrInvalidUpdate = core.ErrInvalidUpdate
	// ErrSlowConsumer: a consumer fell behind a bounded delta stream
	// beyond what coalescing can absorb. Engine-level WithDeltaBuffer
	// subscriptions no longer raise it (overflow folds the oldest queued
	// deltas into one net delta instead — see Delta.Folded); the sentinel
	// remains for serving layers that must shed consumers.
	ErrSlowConsumer = core.ErrSlowConsumer
)

// Execution options for PreparedQuery.Exec and Engine.AnswerContext.
var (
	// WithMaxReads enforces a runtime budget of n tuple reads on the call.
	WithMaxReads = core.WithMaxReads
	// WithoutTrace skips witness-set (D_Q) bookkeeping on the hot path.
	WithoutTrace = core.WithoutTrace
	// WithNaiveFallback falls back to naive evaluation when the query is
	// not controllable (still budget-limited; Answer.Plan is nil).
	WithNaiveFallback = core.WithNaiveFallback
	// WithAnalyze records per-operator runtime counters (rows, reads,
	// wall time, shard fan-out) for Rows.Analyze / EXPLAIN ANALYZE.
	WithAnalyze = core.WithAnalyze
	// WithRequestID tags the execution for slow-query log lines; the
	// serving tier propagates it from the X-SI-Request-ID header.
	WithRequestID = core.WithRequestID
	// WithLimit stops the evaluation — and its read charges — after n
	// distinct answers: the LIMIT of the serving API.
	WithLimit = core.WithLimit
)

// Subscription options for PreparedQuery.Watch and Engine.WatchContext.
var (
	// WithReexec maintains non-maintainable queries by bounded
	// re-execution per relevant commit instead of failing the watch.
	WithReexec = core.WithReexec
	// WithDeltaBuffer bounds the pending-delta queue; on overflow the
	// oldest queued deltas are folded into one net delta (Delta.Folded
	// counts the absorbed commits), so a lagging consumer sees coarser
	// deltas instead of a failed handle.
	WithDeltaBuffer = core.WithDeltaBuffer
)

// NewMaintainer builds a standalone incremental maintainer for a
// conjunctive query with fixed controlling values — the non-subscribed
// variant of Watch (not safe for concurrent use; its Apply commits
// through the engine's write pipeline).
func NewMaintainer(eng *Engine, q *CQ, fixed Bindings) (*Maintainer, error) {
	return core.NewMaintainer(eng, q, fixed)
}

// Int builds an integer value.
func Int(v int64) Value { return relation.Int(v) }

// Str builds a string value.
func Str(s string) Value { return relation.Str(s) }

// NewVarSet builds a variable set.
func NewVarSet(names ...string) VarSet { return query.NewVarSet(names...) }

// ParseCatalog parses relation/access/fd declarations; see package
// internal/parser for the syntax.
func ParseCatalog(src string) (*Catalog, error) { return parser.ParseCatalog(src) }

// ParseQuery parses "Name(x, y) := formula".
func ParseQuery(src string) (*Query, error) { return parser.ParseQuery(src) }

// ParseCQ parses "Name(x, y) :- atom, atom, ..." (or a conjunctive := body).
func ParseCQ(src string) (*CQ, error) { return parser.ParseCQ(src) }

// NewDatabase returns an empty instance of the schema.
func NewDatabase(s *Schema) *Database { return relation.NewDatabase(s) }

// NewUpdate returns an empty update ΔD; fill it with Insert/Delete.
func NewUpdate() *Update { return relation.NewUpdate() }

// Open wraps a database with an access schema, building the indices the
// schema calls for.
func Open(data *Database, acc *AccessSchema) (*Store, error) { return store.Open(data, acc) }

// OpenSharded hash-partitions the data across n independent shards under
// the access schema. Tuples are routed by each relation's
// access-constraint key attributes (overridable with WithRoute), so key
// fetches and membership probes touch one shard, other reads
// scatter-gather in parallel, and updates to different shards apply
// concurrently. The result is a Backend: pass it to NewEngineOn.
func OpenSharded(data *Database, acc *AccessSchema, n int, opts ...ShardOption) (*ShardedStore, error) {
	return shard.Open(data, acc, n, opts...)
}

// WithRoute overrides the routing key of one relation for OpenSharded.
func WithRoute(rel string, attrs ...string) ShardOption { return shard.WithRoute(rel, attrs...) }

// NewEngine opens the data under the access schema on the single-node
// backend and returns a bounded evaluation engine.
func NewEngine(data *Database, acc *AccessSchema) (*Engine, error) {
	st, err := store.Open(data, acc)
	if err != nil {
		return nil, err
	}
	return core.NewEngine(st), nil
}

// NewShardedEngine opens the data hash-partitioned across n shards and
// returns a bounded evaluation engine over the sharded backend.
func NewShardedEngine(data *Database, acc *AccessSchema, n int, opts ...ShardOption) (*Engine, error) {
	st, err := shard.Open(data, acc, n, opts...)
	if err != nil {
		return nil, err
	}
	return core.NewEngine(st), nil
}

// NewEngineOn returns a bounded evaluation engine over any storage
// backend (single-node, sharded, or custom).
func NewEngineOn(b Backend) *Engine { return core.NewEngine(b) }

// NaiveAnswers evaluates a query by scans — the unbounded baseline.
func NaiveAnswers(data *Database, q *Query, fixed Bindings) (*relation.TupleSet, error) {
	return eval.Answers(eval.DBSource{DB: data}, q, fixed)
}

// Controllable reports whether q is x̄-controlled under the engine's access
// schema for x̄ = the given variables, returning the witnessing derivation.
// Failure wraps ErrNotControllable.
func Controllable(eng *Engine, q *Query, x VarSet) (*Derivation, error) {
	return eng.Controllable(q, x)
}
